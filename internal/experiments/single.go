package experiments

import (
	"fmt"
	"sync"

	"evedge/internal/events"
	"evedge/internal/hw"
	"evedge/internal/nmp"
	"evedge/internal/nn"
	"evedge/internal/pipeline"
	"evedge/internal/scene"
	"evedge/internal/sparse"
)

// Shared caches: camera simulation and pipeline runs are the expensive
// parts, and several experiments consume the same artifacts.
var (
	cacheMu     sync.Mutex
	streamCache = map[string]*events.Stream{}
	reportCache = map[string]*pipeline.Report{}
)

func streamFor(cfg Config, p scene.Preset) (*events.Stream, error) {
	key := fmt.Sprintf("%s/%d/%d/%d", p, cfg.Scale, cfg.Seed, cfg.DurUS)
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if s, ok := streamCache[key]; ok {
		return s, nil
	}
	seq, err := scene.NewSequence(p, cfg.Scale, cfg.Seed)
	if err != nil {
		return nil, err
	}
	s, err := seq.Generate(cfg.DurUS)
	if err != nil {
		return nil, err
	}
	streamCache[key] = s
	return s, nil
}

func nmpConfig(cfg Config, seed int64) nmp.Config {
	n := nmp.DefaultConfig()
	n.Seed = seed
	if cfg.Quick {
		n.Population = 10
		n.Generations = 12
	}
	return n
}

func runLevel(cfg Config, net *nn.Network, lvl pipeline.Level) (*pipeline.Report, error) {
	key := fmt.Sprintf("%s/%d/%d/%d/%d/%v", net.Name, lvl, cfg.Scale, cfg.Seed, cfg.DurUS, cfg.Quick)
	cacheMu.Lock()
	if r, ok := reportCache[key]; ok {
		cacheMu.Unlock()
		return r, nil
	}
	cacheMu.Unlock()
	stream, err := streamFor(cfg, net.Input.Preset)
	if err != nil {
		return nil, err
	}
	rep, err := pipeline.Run(pipeline.Config{
		Net: net, Level: lvl,
		NMP:   nmpConfig(cfg, cfg.Seed+1),
		Scale: cfg.Scale, DurUS: cfg.DurUS, Seed: cfg.Seed,
		Stream: stream,
	})
	if err != nil {
		return nil, err
	}
	cacheMu.Lock()
	reportCache[key] = rep
	cacheMu.Unlock()
	return rep, nil
}

// frameStats summarizes E2SF output for a network on its preset.
func frameStats(cfg Config, net *nn.Network) (frames []*sparse.Frame, meanDensity float64, err error) {
	stream, err := streamFor(cfg, net.Input.Preset)
	if err != nil {
		return nil, 0, err
	}
	fr, _, err := pipeline.ConvertStream(net, stream, cfg.DurUS)
	if err != nil {
		return nil, 0, err
	}
	var sum float64
	for _, f := range fr {
		sum += f.Density()
	}
	if len(fr) > 0 {
		sum /= float64(len(fr))
	}
	return fr, sum, nil
}

// Table1 reproduces the paper's network summary table.
func Table1(cfg Config) (*Result, error) {
	r := &Result{
		ID: "table1", Title: "Summary of networks (paper Table 1)",
		Header:   []string{"Network", "Task", "Type", "#Layers", "Split"},
		PaperRef: "Table 1: SpikeFlowNet 12 (4 SNN, 8 ANN); Fusion-FlowNet 29 (10, 19); Adaptive-SpikeNet 8 SNN; HALSIE 16 (3, 13); Hidalgo-Carrio 15 ANN; DOTIE 1 SNN",
	}
	for _, name := range nn.Table1Names() {
		net := nn.MustByName(name)
		snn, ann := net.CountByDomain()
		split := fmt.Sprintf("%d SNN, %d ANN", snn, ann)
		r.addRow(net.Name, net.Task.String(), net.TypeDesc, fmt.Sprintf("%d", len(net.Layers)), split)
	}
	return r, nil
}

// Fig1 reproduces Figure 1: the average percentage of events per event
// frame and the operations expended to process them, for
// Adaptive-SpikeNet on MVSEC IndoorFlying1.
func Fig1(cfg Config) (*Result, error) {
	net := nn.MustByName(nn.AdaptiveSpikeNet)
	frames, density, err := frameStats(cfg, net)
	if err != nil {
		return nil, err
	}
	denseMACs := net.TotalMACs()
	var sparseMACs int64
	for _, l := range net.Layers {
		d := density
		if l.ID > 0 {
			d = net.Layers[l.ID-1].ActDensity
		}
		sparseMACs += l.SparseMACs(d)
	}
	r := &Result{
		ID: "fig1", Title: "Events per frame vs operations expended (Adaptive-SpikeNet, IndoorFlying1)",
		Header:   []string{"Metric", "Value"},
		PaperRef: "Fig. 1: most operations are wasted on inactive pixels; event frames are extremely sparse",
	}
	r.addRow("frames analysed", fmt.Sprintf("%d", len(frames)))
	r.addRow("avg events per frame (%)", fmt.Sprintf("%.2f", density*100))
	r.addRow("dense GMACs per inference", fmt.Sprintf("%.2f", float64(denseMACs)/1e9))
	r.addRow("event-proportional GMACs", fmt.Sprintf("%.2f", float64(sparseMACs)/1e9))
	r.addRow("wasteful-op factor", fmt.Sprintf("%.1fx", float64(denseMACs)/float64(sparseMACs)))
	return r, nil
}

// Fig3 reproduces Figure 3: average percentage of events per event
// frame across the optical-flow networks (paper range 0.15%-28.57%).
func Fig3(cfg Config) (*Result, error) {
	r := &Result{
		ID: "fig3", Title: "Average events per event frame across networks",
		Header:   []string{"Network", "Preset", "Frames", "AvgDensity(%)"},
		PaperRef: "Fig. 3: densities span 0.15%-28.57% across networks on MVSEC",
	}
	lo, hi := 1.0, 0.0
	for _, name := range []string{nn.AdaptiveSpikeNet, nn.FusionFlowNet, nn.SpikeFlowNet, nn.EVFlowNet} {
		net := nn.MustByName(name)
		frames, density, err := frameStats(cfg, net)
		if err != nil {
			return nil, err
		}
		if density < lo {
			lo = density
		}
		if density > hi {
			hi = density
		}
		r.addRow(net.Name, string(net.Input.Preset), fmt.Sprintf("%d", len(frames)),
			fmt.Sprintf("%.2f", density*100))
	}
	r.Notes = append(r.Notes, fmt.Sprintf("measured density range %.2f%%-%.2f%% (paper: 0.15%%-28.57%%)", lo*100, hi*100))
	return r, nil
}

// Fig5 reproduces Figure 5: the temporal event density of the
// IndoorFlying2 segment.
func Fig5(cfg Config) (*Result, error) {
	// IndoorFlying2's maneuvers live in the first ~3 s; use at least
	// that much regardless of the configured duration.
	c2 := cfg
	if c2.DurUS < 3_000_000 {
		c2.DurUS = 3_000_000
	}
	stream, err := streamFor(c2, scene.IndoorFlying2)
	if err != nil {
		return nil, err
	}
	series := stream.DensitySeries(10_000) // events per 10 ms
	vals := make([]float64, len(series))
	var sum, peak float64
	for i, c := range series {
		vals[i] = float64(c)
		sum += float64(c)
		if float64(c) > peak {
			peak = float64(c)
		}
	}
	mean := sum / float64(len(series))
	r := &Result{
		ID: "fig5", Title: "Temporal event density, IndoorFlying2",
		Header:   []string{"Metric", "Value"},
		Series:   map[string][]float64{"events_per_10ms": vals},
		PaperRef: "Fig. 5: strongly bursty temporal density with multi-x peaks over the baseline rate",
	}
	r.addRow("buckets", fmt.Sprintf("%d", len(series)))
	r.addRow("mean events/10ms", fmt.Sprintf("%.0f", mean))
	r.addRow("peak events/10ms", fmt.Sprintf("%.0f", peak))
	r.addRow("peak/mean", fmt.Sprintf("%.1fx", peak/mean))
	return r, nil
}

// Fig8 reproduces Figure 8: single-task speedup over the all-GPU
// implementation at each optimization level.
func Fig8(cfg Config) (*Result, error) {
	r := &Result{
		ID: "fig8", Title: "Single-task speedup vs all-GPU (per optimization level)",
		Header:   []string{"Network", "+E2SF", "+E2SF+DSFA", "Ev-Edge(all)", "MergeRatio"},
		PaperRef: "Fig. 8: 1.23x-2.05x across levels; SNNs gain most; DSFA insignificant for segmentation",
	}
	for _, name := range nn.Table1Names() {
		net := nn.MustByName(name)
		base, err := runLevel(cfg, net, pipeline.LevelBaseline)
		if err != nil {
			return nil, err
		}
		row := []string{net.Name}
		var mr float64 = 1
		for _, lvl := range []pipeline.Level{pipeline.LevelE2SF, pipeline.LevelDSFA, pipeline.LevelNMP} {
			rep, err := runLevel(cfg, net, lvl)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.2fx", base.MeanLatencyUS/rep.MeanLatencyUS))
			if lvl == pipeline.LevelDSFA {
				mr = rep.MergeRatio
			}
		}
		row = append(row, fmt.Sprintf("%.2f", mr))
		r.Rows = append(r.Rows, row)
	}
	return r, nil
}

// Energy reproduces the Sec. 6 energy claim: 1.23x-2.15x over all-GPU.
func Energy(cfg Config) (*Result, error) {
	r := &Result{
		ID: "energy", Title: "Energy improvement vs all-GPU",
		Header:   []string{"Network", "all-GPU(J)", "Ev-Edge(J)", "Improvement"},
		PaperRef: "Sec. 6: 1.23x-2.15x energy over all-GPU for single-task execution",
	}
	for _, name := range nn.Table1Names() {
		net := nn.MustByName(name)
		base, err := runLevel(cfg, net, pipeline.LevelBaseline)
		if err != nil {
			return nil, err
		}
		full, err := runLevel(cfg, net, pipeline.LevelNMP)
		if err != nil {
			return nil, err
		}
		r.addRow(net.Name, fmt.Sprintf("%.1f", base.EnergyJ), fmt.Sprintf("%.1f", full.EnergyJ),
			fmt.Sprintf("%.2fx", base.EnergyJ/full.EnergyJ))
	}
	return r, nil
}

// Table2 reproduces the paper's accuracy table: baseline vs Ev-Edge
// metric values per network.
func Table2(cfg Config) (*Result, error) {
	paperEvEdge := map[string]float64{
		nn.SpikeFlowNet:     0.96,
		nn.FusionFlowNet:    0.79,
		nn.AdaptiveSpikeNet: 1.36,
		nn.HALSIE:           64.18,
		nn.HidalgoDepth:     0.63,
		nn.DOTIE:            0.82,
	}
	r := &Result{
		ID: "table2", Title: "Accuracy for single-task execution (baseline vs Ev-Edge)",
		Header:   []string{"Network", "Metric", "Baseline", "Ev-Edge", "Paper Ev-Edge"},
		PaperRef: "Table 2: minimal accuracy degradation under the per-task ΔA bound",
	}
	for _, name := range nn.Table1Names() {
		net := nn.MustByName(name)
		full, err := runLevel(cfg, net, pipeline.LevelNMP)
		if err != nil {
			return nil, err
		}
		arrow := "↓"
		if !net.Metric.LowerBetter {
			arrow = "↑"
		}
		r.addRow(net.Name,
			fmt.Sprintf("%s-%s", net.Metric.Name, arrow),
			fmt.Sprintf("%.2f", net.BaselineAccuracy),
			fmt.Sprintf("%.2f", full.Accuracy),
			fmt.Sprintf("%.2f", paperEvEdge[name]))
	}
	return r, nil
}

// XavierPlatform is re-exported for the multi-task experiments and
// tools.
func XavierPlatform() *hw.Platform { return hw.Xavier() }
