package sparse

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// validFrameBytes builds a small well-formed EVSF frame for the seed
// corpus.
func validFrameBytes(t testing.TB) []byte {
	f := NewFrame(6, 8, 0, 1000)
	f.Set(1, 2, 3, 0)
	f.Set(2, 5, 0, 2)
	f.Set(4, 7, 1, 1)
	var buf bytes.Buffer
	if err := WriteFrame(&buf, f); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzReadFrame hammers the sparse-frame decoder with malformed
// input: it must never panic, never trust the header's entry count,
// and anything it accepts must satisfy Validate and roundtrip.
func FuzzReadFrame(f *testing.F) {
	valid := validFrameBytes(f)
	f.Add(valid)
	f.Add(valid[:len(valid)-3]) // truncated entry
	f.Add(valid[:9])            // truncated header
	f.Add([]byte("EVSF"))
	f.Add([]byte("XXXX\x01\x00"))
	// Header claiming ~4e9 entries on a 65535x65535 frame with an empty
	// body: the allocation bomb the bounded preallocation defuses.
	bomb := []byte("EVSF")
	hdr := make([]byte, 26)
	binary.LittleEndian.PutUint16(hdr[0:], 1)
	binary.LittleEndian.PutUint16(hdr[2:], 65535)
	binary.LittleEndian.PutUint16(hdr[4:], 65535)
	binary.LittleEndian.PutUint32(hdr[22:], 1<<31)
	f.Add(append(bomb, hdr...))

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := fr.Validate(); err != nil {
			t.Fatalf("decoder accepted an invalid frame: %v", err)
		}
		var out bytes.Buffer
		if err := WriteFrame(&out, fr); err != nil {
			t.Fatalf("re-encoding accepted frame: %v", err)
		}
		fr2, err := ReadFrame(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-decoding own encoding: %v", err)
		}
		if fr2.NNZ() != fr.NNZ() || fr2.H != fr.H || fr2.W != fr.W {
			t.Fatalf("roundtrip mismatch: %dx%d/%d vs %dx%d/%d",
				fr.H, fr.W, fr.NNZ(), fr2.H, fr2.W, fr2.NNZ())
		}
	})
}

// FuzzReadFrames covers the count-prefixed sequence decoder: the
// prefix is untrusted, truncated sequences must error cleanly.
func FuzzReadFrames(f *testing.F) {
	frame := validFrameBytes(f)
	var seq bytes.Buffer
	var cnt [4]byte
	binary.LittleEndian.PutUint32(cnt[:], 2)
	seq.Write(cnt[:])
	seq.Write(frame)
	seq.Write(frame)
	f.Add(seq.Bytes())
	f.Add(seq.Bytes()[:seq.Len()-7])
	// A count of 2^32-1 frames over an empty body.
	binary.LittleEndian.PutUint32(cnt[:], 1<<32-1)
	f.Add(cnt[:])

	f.Fuzz(func(t *testing.T, data []byte) {
		frames, err := ReadFrames(bytes.NewReader(data))
		if err != nil {
			return
		}
		for i, fr := range frames {
			if err := fr.Validate(); err != nil {
				t.Fatalf("decoder accepted invalid frame %d: %v", i, err)
			}
		}
		var out bytes.Buffer
		if err := WriteFrames(&out, frames); err != nil {
			t.Fatalf("re-encoding accepted frames: %v", err)
		}
		frames2, err := ReadFrames(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-decoding own encoding: %v", err)
		}
		if len(frames2) != len(frames) {
			t.Fatalf("roundtrip frame count %d != %d", len(frames2), len(frames))
		}
	})
}
