package sparse

import (
	"math"
	"math/rand"
	"testing"

	"evedge/internal/par"
)

// randDenseFrame builds a sorted sparse frame with roughly density*H*W
// active entries.
func randDenseFrame(r *rand.Rand, h, w int, density float64) *Frame {
	f := NewFrame(h, w, 0, 1000)
	n := int(float64(h*w) * density)
	if n < 1 {
		n = 1
	}
	for i := 0; i < n; i++ {
		pos, neg := float32(r.Intn(3)), float32(r.Intn(3))
		if pos == 0 && neg == 0 {
			pos = 1
		}
		f.Set(int32(r.Intn(h)), int32(r.Intn(w)), pos, neg)
	}
	return f
}

// setsEqual asserts two rulebooks list the same sites with the same
// clip structure.
func setsEqual(t *testing.T, tag string, got, want *ActiveSet) {
	t.Helper()
	if got.H != want.H || got.W != want.W || got.K != want.K {
		t.Fatalf("%s: shape %dx%d k=%d != %dx%d k=%d", tag, got.H, got.W, got.K, want.H, want.W, want.K)
	}
	if got.Sites() != want.Sites() {
		t.Fatalf("%s: %d sites != %d", tag, got.Sites(), want.Sites())
	}
	for i := range got.Ys {
		if got.Ys[i] != want.Ys[i] || got.Xs[i] != want.Xs[i] {
			t.Fatalf("%s: site %d = (%d,%d), want (%d,%d)", tag, i, got.Ys[i], got.Xs[i], want.Ys[i], want.Xs[i])
		}
	}
	for i := range got.Clip {
		if got.Clip[i] != want.Clip[i] {
			t.Fatalf("%s: clip byte %d = %d, want %d", tag, i, got.Clip[i], want.Clip[i])
		}
	}
}

// TestActiveSetBuildEquivalence: the O(nnz) frame build and the dense
// rescan must produce the identical rulebook.
func TestActiveSetBuildEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		h, w := 3+r.Intn(30), 3+r.Intn(30)
		k := []int{1, 3, 5}[r.Intn(3)]
		f := randDenseFrame(r, h, w, []float64{0.02, 0.2, 0.9}[r.Intn(3)])
		fromFrame := NewActiveSet(h, w, k)
		fromFrame.BuildFromFrame(f, k)
		fromTensor := NewActiveSet(h, w, k)
		fromTensor.BuildFromTensor(f.Dense(), k)
		setsEqual(t, "frame vs tensor build", fromFrame, fromTensor)
	}
}

// TestSitesKernelBitIdentical: under the exact-set contract the
// rulebook-driven kernel (serial and tiled) must reproduce
// SubmanifoldConv2DInto bit for bit.
func TestSitesKernelBitIdentical(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	pool := par.New(4)
	defer pool.Close()
	for trial := 0; trial < 20; trial++ {
		inC, outC := 1+r.Intn(4), 1+r.Intn(4)
		h, w := 5+r.Intn(24), 5+r.Intn(24)
		k := []int{1, 3, 5}[r.Intn(3)]
		in := NewTensor(inC, h, w)
		in.FillRandomSparse(r, []float64{0.02, 0.15, 0.6}[r.Intn(3)])
		f := randFilter(r, outC, inC, k, 1, k/2)

		want := NewTensor(outC, h, w)
		if err := SubmanifoldConv2DInto(want, in, f); err != nil {
			t.Fatal(err)
		}
		as := NewActiveSet(h, w, k)
		as.BuildFromTensor(in, k)

		got := NewTensor(outC, h, w)
		got.FillRandom(r)
		if err := SubmanifoldConv2DSites(got, in, f, as); err != nil {
			t.Fatal(err)
		}
		bitsEqual(t, "SubmanifoldConv2DSites", got.Data, want.Data)

		gotT := NewTensor(outC, h, w)
		gotT.FillRandom(r)
		if err := SubmanifoldConv2DSitesTiled(gotT, in, f, as, pool, 1+r.Intn(8)); err != nil {
			t.Fatal(err)
		}
		bitsEqual(t, "SubmanifoldConv2DSitesTiled", gotT.Data, want.Data)
	}
}

// TestRefineChainExactness: refining the input rulebook through a
// submanifold layer stack (conv + ReLU) must yield exactly the set a
// full rescan of each intermediate tensor finds, and driving the next
// layer with the refined set must stay bit-identical to the serial
// kernel.
func TestRefineChainExactness(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for trial := 0; trial < 10; trial++ {
		h, w := 8+r.Intn(16), 8+r.Intn(16)
		k := 3
		cs := []int{1 + r.Intn(3), 1 + r.Intn(4), 1 + r.Intn(4), 1 + r.Intn(3)}
		in := NewTensor(cs[0], h, w)
		in.FillRandomSparse(r, 0.15)

		as := NewActiveSet(h, w, k)
		as.BuildFromTensor(in, k)
		cur := in
		for l := 0; l+1 < len(cs); l++ {
			f := randFilter(r, cs[l+1], cs[l], k, 1, k/2)
			want := NewTensor(cs[l+1], h, w)
			if err := SubmanifoldConv2DInto(want, cur, f); err != nil {
				t.Fatal(err)
			}
			want.ReLU()
			got := NewTensor(cs[l+1], h, w)
			got.FillRandom(r)
			if err := SubmanifoldConv2DSites(got, cur, f, as); err != nil {
				t.Fatal(err)
			}
			got.ReLU()
			bitsEqual(t, "chained sites kernel", got.Data, want.Data)

			as.Refine(got)
			rescan := NewActiveSet(h, w, k)
			rescan.BuildFromTensor(got, k)
			setsEqual(t, "refine vs rescan", as, rescan)
			cur = got
		}
	}
}

// TestRulebookCacheDeltaEqualsRebuild: whatever path Observe takes
// (first build, delta carry, or overlap-miss rebuild), the returned
// rulebook must equal a fresh build from the frame.
func TestRulebookCacheDeltaEqualsRebuild(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	c := NewRulebookCache(3, 0.5)
	h, w := 24, 32
	base := randDenseFrame(r, h, w, 0.2)
	for step := 0; step < 30; step++ {
		var f *Frame
		switch step % 3 {
		case 0: // near-steady: base plus a couple of new sites
			f = base.Clone()
			f.Set(int32(r.Intn(h)), int32(r.Intn(w)), 1, 0)
		case 1: // drift: fresh overlapping sample around the same density
			f = base.Clone()
			for i := 0; i < 5; i++ {
				f.Set(int32(r.Intn(h)), int32(r.Intn(w)), 0, 1)
			}
		default: // scene cut: unrelated frame
			f = randDenseFrame(r, h, w, 0.2)
		}
		got, _ := c.Observe(f)
		want := NewActiveSet(h, w, 3)
		want.BuildFromFrame(f, 3)
		setsEqual(t, "observe vs rebuild", got, want)
	}
	st := c.Stats()
	if st.Frames != 30 || st.Hits+st.Misses != 30 {
		t.Fatalf("stats don't add up: %+v", st)
	}
	if st.Hits == 0 || st.Misses == 0 {
		t.Fatalf("expected both hits and misses over mixed traffic: %+v", st)
	}
}

// TestRulebookCacheStats: a steady stream delta-carries every frame
// after the first; activity jumping between far-apart regions rebuilds
// every frame; a geometry change forces a rebuild.
func TestRulebookCacheStats(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	steady := NewRulebookCache(0, 0) // defaults: k=3, overlap 0.5
	if steady.K() != 3 {
		t.Fatalf("default K = %d, want 3", steady.K())
	}
	base := randDenseFrame(r, 16, 16, 0.3)
	for i := 0; i < 10; i++ {
		f := base.Clone()
		f.Set(int32(i), int32(i), 1, 0) // tiny drift
		if _, hit := steady.Observe(f); hit != (i > 0) {
			t.Fatalf("steady frame %d: hit=%v", i, hit)
		}
	}
	st := steady.Stats()
	if st.Hits != 9 || st.Misses != 1 {
		t.Fatalf("steady stats = %+v, want 9 hits / 1 miss", st)
	}
	if got := st.HitRate(); got < 0.89 || got > 0.91 {
		t.Fatalf("steady hit rate = %g, want 0.9", got)
	}
	if st.SitesCarried == 0 {
		t.Fatalf("steady stream carried no sites: %+v", st)
	}

	flip := NewRulebookCache(3, 0.5)
	// Activity jumping between two far-apart bands (beyond the kernel
	// half-width) alternating: zero coherence coverage, every frame a
	// scene cut.
	a, b := NewFrame(8, 8, 0, 1), NewFrame(8, 8, 0, 1)
	for y := int32(0); y < 3; y++ {
		for x := int32(0); x < 8; x++ {
			a.Set(y, x, 1, 0)
			b.Set(y+5, x, 0, 1)
		}
	}
	for i := 0; i < 6; i++ {
		f := a
		if i%2 == 1 {
			f = b
		}
		if _, hit := flip.Observe(f); hit {
			t.Fatalf("flip frame %d unexpectedly hit", i)
		}
	}
	if st := flip.Stats(); st.Misses != 6 || st.SitesCarried != 0 {
		t.Fatalf("flip stats = %+v, want 6 misses and no carried sites", st)
	}

	// Geometry change: same cache, new shape → rebuild.
	resize := NewRulebookCache(3, 0.5)
	resize.Observe(randDenseFrame(r, 8, 8, 0.5))
	if _, hit := resize.Observe(randDenseFrame(r, 16, 16, 0.5)); hit {
		t.Fatal("geometry change should miss")
	}
}

// TestRulebookCoherenceShiftTolerance pins the coherence metric: an
// edge drifting less than the kernel half-width per frame stays on the
// delta path (its sites still read overlapping K x K neighborhoods,
// even with zero pixel-exact matches), while a jump beyond the radius
// reads as a scene cut. Either way the set equals a fresh rebuild.
func TestRulebookCoherenceShiftTolerance(t *testing.T) {
	mk := func(dx int32) *Frame {
		f := NewFrame(16, 16, 0, 1)
		for y := int32(4); y < 12; y++ {
			f.Set(y, 4+dx, 1, 0) // a vertical edge at column 4+dx
		}
		return f
	}
	c := NewRulebookCache(3, 0.5)
	c.Observe(mk(0))
	got, hit := c.Observe(mk(1))
	if !hit {
		t.Fatal("1px shift with k=3 should delta-revalidate")
	}
	want := NewActiveSet(16, 16, 3)
	want.BuildFromFrame(mk(1), 3)
	setsEqual(t, "shifted edge", got, want)
	if st := c.Stats(); st.SitesCarried != 0 {
		t.Fatalf("no pixel-exact matches yet %d sites carried: %+v", st.SitesCarried, st)
	}
	if _, hit := c.Observe(mk(8)); hit {
		t.Fatal("8px jump with k=3 should rebuild")
	}
}

// TestRulebookCacheBorrowRelease: the pool hooks must source every
// buffer and get them all back on Close.
func TestRulebookCacheBorrowRelease(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	var borrowed, released int
	c := NewRulebookCache(3, 0.5)
	c.Borrow = func(h, w, k int) *ActiveSet {
		borrowed++
		return NewActiveSet(h, w, k)
	}
	c.Release = func(a *ActiveSet) { released++ }
	base := randDenseFrame(r, 12, 12, 0.4)
	for i := 0; i < 5; i++ {
		f := base.Clone()
		f.Set(int32(i), 0, 1, 0)
		c.Observe(f)
	}
	if borrowed != 2 { // cur + spare, reused thereafter
		t.Fatalf("borrowed %d buffers, want 2", borrowed)
	}
	c.Close()
	if released != borrowed {
		t.Fatalf("released %d of %d borrowed buffers", released, borrowed)
	}
	// Reusable after Close.
	c.Observe(base.Clone())
	if borrowed != 3 {
		t.Fatalf("post-Close Observe borrowed %d total, want 3", borrowed)
	}
	c.Close()
	if released != borrowed {
		t.Fatalf("final release count %d != borrowed %d", released, borrowed)
	}
}

// TestActiveSetClipBounds: clip ranges must cover exactly the
// in-bounds taps (spot check corners and center on a small shape).
func TestActiveSetClipBounds(t *testing.T) {
	as := NewActiveSet(4, 5, 3)
	as.appendSite(0, 0)
	as.appendSite(3, 4)
	as.appendSite(2, 2)
	check := func(i int, kyLo, kyHi, kxLo, kxHi uint8) {
		t.Helper()
		got := as.Clip[4*i : 4*i+4]
		if got[0] != kyLo || got[1] != kyHi || got[2] != kxLo || got[3] != kxHi {
			t.Fatalf("site %d clip = %v, want [%d %d %d %d]", i, got, kyLo, kyHi, kxLo, kxHi)
		}
	}
	check(0, 1, 3, 1, 3) // top-left corner clips the first tap row/col
	check(1, 0, 2, 0, 2) // bottom-right clips the last
	check(2, 0, 3, 0, 3) // interior keeps the full window
}

// TestSitesKernelContractErrors: shape and eligibility validation.
func TestSitesKernelContractErrors(t *testing.T) {
	r := rand.New(rand.NewSource(29))
	in := NewTensor(2, 8, 8)
	in.FillRandomSparse(r, 0.3)
	f := randFilter(r, 3, 2, 3, 1, 1)
	as := NewActiveSet(8, 8, 3)
	as.BuildFromTensor(in, 3)
	bad := NewTensor(3, 7, 8)
	if err := SubmanifoldConv2DSites(bad, in, f, as); err == nil {
		t.Fatal("accepted mis-shaped output")
	}
	wrongK := NewActiveSet(8, 8, 5)
	wrongK.BuildFromTensor(in, 5)
	out := NewTensor(3, 8, 8)
	if err := SubmanifoldConv2DSites(out, in, f, wrongK); err == nil {
		t.Fatal("accepted active set with mismatched K")
	}
	strided := randFilter(r, 3, 2, 3, 2, 1)
	if err := SubmanifoldConv2DSites(out, in, strided, as); err == nil {
		t.Fatal("accepted strided filter")
	}
}

// TestSitesKernelNaNSafety documents that bit identity holds even for
// non-finite inputs (NaN payloads propagate identically).
func TestSitesKernelNaNSafety(t *testing.T) {
	in := NewTensor(1, 4, 4)
	in.Set(0, 1, 1, float32(math.NaN()))
	in.Set(0, 2, 3, float32(math.Inf(1)))
	f := &Filter{OutC: 1, InC: 1, K: 3, Stride: 1, Pad: 1,
		Weights: []float32{0.5, -1, 0.25, 2, -0.125, 1, -3, 0.75, -0.5}}
	want := NewTensor(1, 4, 4)
	if err := SubmanifoldConv2DInto(want, in, f); err != nil {
		t.Fatal(err)
	}
	as := NewActiveSet(4, 4, 3)
	as.BuildFromTensor(in, 3)
	got := NewTensor(1, 4, 4)
	if err := SubmanifoldConv2DSites(got, in, f, as); err != nil {
		t.Fatal(err)
	}
	bitsEqual(t, "NaN propagation", got.Data, want.Data)
}
