package sparse

import (
	"fmt"
	"sync"

	"evedge/internal/par"
)

// Tiled kernel variants: the serial compute kernels re-expressed as
// par.Tasks that partition work by DISJOINT output ranges. Each output
// element is produced by exactly one shard with the same inner-loop
// accumulation order as the serial kernel, so results are
// bit-identical to the serial variants for every shard count and
// worker schedule (property-tested in tiled_test.go). That invariant
// is what lets the serving layer turn parallelism on without
// perturbing byte-identical scenario replay.
//
// Sharding choices:
//
//   - Conv2DTiledInto flattens (out-channel, output-row) pairs into one
//     row index space and splits it into contiguous ranges — each
//     element is computed independently, so any partition works.
//   - SparseConv2DTiledInto shards output rows; every shard rescans
//     only the input rows that can reach its output range and applies
//     only the updates it owns. Per output element the contributions
//     still arrive in (ic, iy, ix) ascending order, the serial
//     scatter's order.
//   - SubmanifoldConv2DTiledInto shards output rows of the active-site
//     scan; inactive rows are zeroed by their owning shard.
//   - SpMMTiledInto shards CSR output rows.
//
// Task structs are free-listed so a warm steady state dispatches with
// zero heap allocations (see the serve alloc-regression suite).

// splitRange returns shard's half-open slice of [0, n) under an even
// contiguous partition into shards parts.
func splitRange(shard, shards, n int) (lo, hi int) {
	return shard * n / shards, (shard + 1) * n / shards
}

// clampShards bounds the requested shard count by the available rows.
func clampShards(shards, rows int) int {
	if shards > rows {
		shards = rows
	}
	if shards < 1 {
		shards = 1
	}
	return shards
}

// conv2DTask is one dense direct convolution sharded over flattened
// (oc, oy) rows.
type conv2DTask struct {
	out, in *Tensor
	f       *Filter
	oh, ow  int
}

var conv2DTasks = sync.Pool{New: func() any { return new(conv2DTask) }}

func (t *conv2DTask) RunShard(shard, shards int, _ *par.Scratch) {
	f, in, out := t.f, t.in, t.out
	lo, hi := splitRange(shard, shards, f.OutC*t.oh)
	for r := lo; r < hi; r++ {
		oc, oy := r/t.oh, r%t.oh
		var bias float32
		if f.Bias != nil {
			bias = f.Bias[oc]
		}
		for ox := 0; ox < t.ow; ox++ {
			sum := bias
			for ic := 0; ic < f.InC; ic++ {
				for ky := 0; ky < f.K; ky++ {
					iy := oy*f.Stride + ky - f.Pad
					if iy < 0 || iy >= in.H {
						continue
					}
					for kx := 0; kx < f.K; kx++ {
						ix := ox*f.Stride + kx - f.Pad
						if ix < 0 || ix >= in.W {
							continue
						}
						sum += f.W(oc, ic, ky, kx) * in.At(ic, iy, ix)
					}
				}
			}
			out.Set(oc, oy, ox, sum)
		}
	}
}

// Conv2DTiledInto is Conv2DInto executed across pool shards; results
// are bit-identical to the serial kernel. shards <= 1 or a nil/serial
// pool falls back to Conv2DInto. Deconvolution is a scatter with
// overlapping output windows and stays serial.
func Conv2DTiledInto(out, in *Tensor, f *Filter, pool *par.Pool, shards int) error {
	if f.Deconv || pool.Size() <= 1 || shards <= 1 {
		return Conv2DInto(out, in, f)
	}
	if in.C != f.InC {
		return fmt.Errorf("sparse: conv input channels %d != filter %d", in.C, f.InC)
	}
	oh, ow, err := checkOut(out, f, in.H, in.W)
	if err != nil {
		return err
	}
	shards = clampShards(shards, f.OutC*oh)
	t := conv2DTasks.Get().(*conv2DTask)
	t.out, t.in, t.f, t.oh, t.ow = out, in, f, oh, ow
	pool.Run(shards, t)
	t.out, t.in, t.f = nil, nil, nil
	conv2DTasks.Put(t)
	return nil
}

// sparseConv2DTask is one gather-scatter convolution sharded over
// output rows: each shard initializes and owns rows [lo, hi) and
// rescans only the input rows that can reach them.
type sparseConv2DTask struct {
	out, in *Tensor
	f       *Filter
	oh, ow  int
}

var sparseConv2DTasks = sync.Pool{New: func() any { return new(sparseConv2DTask) }}

func (t *sparseConv2DTask) RunShard(shard, shards int, _ *par.Scratch) {
	f, in, out := t.f, t.in, t.out
	oh, ow := t.oh, t.ow
	lo, hi := splitRange(shard, shards, oh)
	// Initialize owned rows exactly as the serial kernel does the full
	// tensor: bias everywhere or zero.
	for oc := 0; oc < f.OutC; oc++ {
		var bias float32
		if f.Bias != nil {
			bias = f.Bias[oc]
		}
		base := (oc*oh + lo) * ow
		row := out.Data[base : base+(hi-lo)*ow]
		for i := range row {
			row[i] = bias
		}
	}
	// Input rows feeding oy in [lo, hi): iy = oy*S + ky - P for
	// ky in [0, K).
	iyLo := lo*f.Stride - f.Pad
	if iyLo < 0 {
		iyLo = 0
	}
	iyHi := (hi-1)*f.Stride + f.K - 1 - f.Pad + 1
	if iyHi > in.H {
		iyHi = in.H
	}
	for ic := 0; ic < in.C; ic++ {
		for iy := iyLo; iy < iyHi; iy++ {
			irow := in.Data[(ic*in.H+iy)*in.W : (ic*in.H+iy+1)*in.W]
			for ix, v := range irow {
				if v == 0 {
					continue
				}
				for ky := 0; ky < f.K; ky++ {
					num := iy + f.Pad - ky
					if num < 0 || num%f.Stride != 0 {
						continue
					}
					oy := num / f.Stride
					if oy < lo || oy >= hi {
						continue
					}
					for kx := 0; kx < f.K; kx++ {
						numx := ix + f.Pad - kx
						if numx < 0 || numx%f.Stride != 0 {
							continue
						}
						ox := numx / f.Stride
						if ox >= ow {
							continue
						}
						for oc := 0; oc < f.OutC; oc++ {
							out.Add(oc, oy, ox, f.W(oc, ic, ky, kx)*v)
						}
					}
				}
			}
		}
	}
}

// SparseConv2DTiledInto is SparseConv2DInto executed across pool
// shards with bit-identical results: each output element receives its
// contributions in the serial scatter's (ic, iy, ix) ascending order,
// only restricted to the rows the shard owns. Deconvolution stays
// serial.
func SparseConv2DTiledInto(out, in *Tensor, f *Filter, pool *par.Pool, shards int) error {
	if f.Deconv || pool.Size() <= 1 || shards <= 1 {
		return SparseConv2DInto(out, in, f)
	}
	if in.C != f.InC {
		return fmt.Errorf("sparse: conv input channels %d != filter %d", in.C, f.InC)
	}
	oh, ow, err := checkOut(out, f, in.H, in.W)
	if err != nil {
		return err
	}
	shards = clampShards(shards, oh)
	t := sparseConv2DTasks.Get().(*sparseConv2DTask)
	t.out, t.in, t.f, t.oh, t.ow = out, in, f, oh, ow
	pool.Run(shards, t)
	t.out, t.in, t.f = nil, nil, nil
	sparseConv2DTasks.Put(t)
	return nil
}

// submanifoldTask is one submanifold convolution sharded over output
// rows; each shard zeroes and computes its own rows.
type submanifoldTask struct {
	out, in *Tensor
	f       *Filter
}

var submanifoldTasks = sync.Pool{New: func() any { return new(submanifoldTask) }}

func (t *submanifoldTask) RunShard(shard, shards int, _ *par.Scratch) {
	f, in, out := t.f, t.in, t.out
	lo, hi := splitRange(shard, shards, in.H)
	for oc := 0; oc < f.OutC; oc++ {
		base := (oc*out.H + lo) * out.W
		row := out.Data[base : base+(hi-lo)*out.W]
		for i := range row {
			row[i] = 0
		}
	}
	submanifoldRows(out, in, f, lo, hi)
}

// submanifoldRows runs the active-site scan over output rows [lo, hi)
// with the per-(oc, ic) weight-row bases hoisted out of the site loop.
// It is the shared inner body of SubmanifoldConv2DInto (full range)
// and the tiled variant (one shard's range); the accumulation order
// per site is (oc, ic, ky, kx) either way.
func submanifoldRows(out, in *Tensor, f *Filter, lo, hi int) {
	half := f.K / 2
	kk := f.K * f.K
	for oy := lo; oy < hi; oy++ {
	site:
		for ox := 0; ox < in.W; ox++ {
			active := false
			for c := 0; c < in.C; c++ {
				if in.At(c, oy, ox) != 0 {
					active = true
					break
				}
			}
			if !active {
				continue site
			}
			for oc := 0; oc < f.OutC; oc++ {
				var sum float32
				if f.Bias != nil {
					sum = f.Bias[oc]
				}
				wbase := f.Weights[oc*f.InC*kk:]
				for ic := 0; ic < f.InC; ic++ {
					wch := wbase[ic*kk:]
					for ky := 0; ky < f.K; ky++ {
						iy := oy + ky - half
						if iy < 0 || iy >= in.H {
							continue
						}
						wrow := wch[ky*f.K : ky*f.K+f.K]
						irow := in.Data[(ic*in.H+iy)*in.W:]
						for kx := 0; kx < f.K; kx++ {
							ix := ox + kx - half
							if ix < 0 || ix >= in.W {
								continue
							}
							sum += wrow[kx] * irow[ix]
						}
					}
				}
				out.Set(oc, oy, ox, sum)
			}
		}
	}
}

// SubmanifoldConv2DTiledInto is SubmanifoldConv2DInto executed across
// pool shards over disjoint output-row ranges, bit-identical to the
// serial kernel.
func SubmanifoldConv2DTiledInto(out, in *Tensor, f *Filter, pool *par.Pool, shards int) error {
	if pool.Size() <= 1 || shards <= 1 {
		return SubmanifoldConv2DInto(out, in, f)
	}
	if in.C != f.InC {
		return fmt.Errorf("sparse: conv input channels %d != filter %d", in.C, f.InC)
	}
	if f.Stride != 1 || f.K%2 == 0 || f.Pad != f.K/2 {
		return fmt.Errorf("sparse: submanifold conv needs stride 1, odd K, pad K/2 (got s=%d k=%d p=%d)",
			f.Stride, f.K, f.Pad)
	}
	if out.C != f.OutC || out.H != in.H || out.W != in.W {
		return fmt.Errorf("sparse: conv output tensor %dx%dx%d != expected %dx%dx%d",
			out.C, out.H, out.W, f.OutC, in.H, in.W)
	}
	shards = clampShards(shards, in.H)
	t := submanifoldTasks.Get().(*submanifoldTask)
	t.out, t.in, t.f = out, in, f
	pool.Run(shards, t)
	t.out, t.in, t.f = nil, nil, nil
	submanifoldTasks.Put(t)
	return nil
}

// spmmTask is one CSR x dense product sharded over output rows.
type spmmTask struct {
	m   *CSR
	d   *Mat
	out *Mat
}

var spmmTasks = sync.Pool{New: func() any { return new(spmmTask) }}

func (t *spmmTask) RunShard(shard, shards int, _ *par.Scratch) {
	m, d, out := t.m, t.d, t.out
	lo, hi := splitRange(shard, shards, m.Rows)
	zero := out.Data[lo*out.Cols : hi*out.Cols]
	for i := range zero {
		zero[i] = 0
	}
	for i := lo; i < hi; i++ {
		orow := out.Data[i*out.Cols : (i+1)*out.Cols]
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			v := m.Vals[k]
			drow := d.Data[int(m.ColIdx[k])*d.Cols : (int(m.ColIdx[k])+1)*d.Cols]
			for j, dv := range drow {
				orow[j] += v * dv
			}
		}
	}
}

// SpMMTiledInto is SpMMInto executed across pool shards over disjoint
// output-row ranges, bit-identical to the serial kernel.
func (m *CSR) SpMMTiledInto(out, d *Mat, pool *par.Pool, shards int) error {
	if pool.Size() <= 1 || shards <= 1 {
		return m.SpMMInto(out, d)
	}
	if d.Rows != m.Cols {
		return fmt.Errorf("sparse: SpMM shape mismatch %dx%d x %dx%d", m.Rows, m.Cols, d.Rows, d.Cols)
	}
	if out.Rows != m.Rows || out.Cols != d.Cols {
		return fmt.Errorf("sparse: SpMM output %dx%d, want %dx%d", out.Rows, out.Cols, m.Rows, d.Cols)
	}
	shards = clampShards(shards, m.Rows)
	t := spmmTasks.Get().(*spmmTask)
	t.m, t.d, t.out = m, d, out
	pool.Run(shards, t)
	t.m, t.d, t.out = nil, nil, nil
	spmmTasks.Put(t)
	return nil
}
