package sparse

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func randFrame(r *rand.Rand, h, w int) *Frame {
	b := NewFrameBuilder(h, w, r.Int63n(1000), 1000+r.Int63n(1000))
	n := r.Intn(h * w / 2)
	for i := 0; i < n; i++ {
		b.AddEvent(int32(r.Intn(h)), int32(r.Intn(w)), r.Intn(2) == 0)
	}
	f := b.Build()
	return f
}

func TestFrameCodecRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 10; i++ {
		f := randFrame(r, 20, 30)
		var buf bytes.Buffer
		if err := WriteFrame(&buf, f); err != nil {
			t.Fatal(err)
		}
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, f) {
			t.Fatalf("round trip %d mismatch", i)
		}
	}
}

// Regression: an empty *built* frame must round-trip identically (the
// builder and decoder must agree on nil channel slices for emptiness).
func TestFrameCodecEmptyBuiltFrame(t *testing.T) {
	b := NewFrameBuilder(12, 12, 5, 9)
	f := b.Build()
	var buf bytes.Buffer
	if err := WriteFrame(&buf, f); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, f) {
		t.Fatalf("empty built frame round trip mismatch: %#v vs %#v", got, f)
	}
}

func TestFrameCodecEmpty(t *testing.T) {
	f := NewFrame(5, 5, 10, 20)
	var buf bytes.Buffer
	if err := WriteFrame(&buf, f); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NNZ() != 0 || got.H != 5 || got.T0 != 10 || got.T1 != 20 {
		t.Fatalf("empty round trip wrong: %+v", got)
	}
}

func TestFrameCodecRejectsGarbage(t *testing.T) {
	if _, err := ReadFrame(bytes.NewReader([]byte("NOPE........................"))); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadFrame(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty accepted")
	}
	// Truncated entries.
	f := NewFrame(4, 4, 0, 1)
	f.Set(1, 1, 1, 0)
	var buf bytes.Buffer
	if err := WriteFrame(&buf, f); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-4]
	if _, err := ReadFrame(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated frame accepted")
	}
}

func TestFramesSequence(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	frames := []*Frame{randFrame(r, 10, 10), randFrame(r, 10, 10), NewFrame(10, 10, 0, 1)}
	var buf bytes.Buffer
	if err := WriteFrames(&buf, frames); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrames(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("frames=%d", len(got))
	}
	for i := range frames {
		if !reflect.DeepEqual(got[i], frames[i]) {
			t.Fatalf("frame %d mismatch", i)
		}
	}
}

// Property: the codec is lossless for arbitrary built frames.
func TestFrameCodecProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		fr := randFrame(r, 8+r.Intn(40), 8+r.Intn(40))
		var buf bytes.Buffer
		if err := WriteFrame(&buf, fr); err != nil {
			return false
		}
		got, err := ReadFrame(&buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got, fr)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
