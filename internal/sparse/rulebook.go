package sparse

import (
	"fmt"
	"sync"

	"evedge/internal/par"
)

// The rulebook cache exploits the temporal coherence of event streams:
// consecutive frames from the same scene activate heavily overlapping
// pixel sets, and within one forward pass every submanifold layer of
// the same spatial shape shares one active-site set. Instead of
// re-discovering activity with an O(C·H·W) scan per layer per frame
// (what SubmanifoldConv2DInto's row-major scan does), an ActiveSet is
// materialized once per input frame — O(nnz) straight off the sorted
// COO coordinates — carried across the layers of a pass (refined in
// O(C·sites) per layer, exact because a submanifold layer can only
// deactivate sites, never activate new ones), and delta-revalidated
// against the previous frame's set when the overlap is high. This is
// the "materialize the sparsity structure once, stream compute over
// it" idea of composable sparse-dataflow accelerators, applied to the
// Go hot path.

// ActiveSet is the materialized rulebook of one tensor shape: the
// active (any-channel-nonzero) sites in row-major order plus, per
// site, the clipped kernel-tap bounds for a K x K submanifold window —
// the per-site valid-neighbor structure, so the site kernel never
// bounds-checks taps.
type ActiveSet struct {
	H, W, K int
	Ys, Xs  []int32
	// Clip stores 4 bytes per site: kyLo, kyHi, kxLo, kxHi (hi
	// exclusive) — the in-bounds tap range of the site's window.
	Clip []uint8
}

// NewActiveSet returns an empty set for the given shape and kernel
// size (K must be odd; the submanifold constraint).
func NewActiveSet(h, w, k int) *ActiveSet {
	a := &ActiveSet{}
	a.Reset(h, w, k)
	return a
}

// Reset re-targets the set to a shape, keeping slice capacity — the
// pooled-construction hook used by mem.ActiveSetPool.
func (a *ActiveSet) Reset(h, w, k int) {
	if h <= 0 || w <= 0 || k <= 0 || k%2 == 0 {
		panic(fmt.Sprintf("sparse: invalid active set shape %dx%d k=%d", h, w, k))
	}
	a.H, a.W, a.K = h, w, k
	a.Ys = a.Ys[:0]
	a.Xs = a.Xs[:0]
	a.Clip = a.Clip[:0]
}

// Sites returns the number of active sites.
func (a *ActiveSet) Sites() int { return len(a.Ys) }

// appendSite adds one site with freshly computed clip bounds; callers
// must append in row-major (y, x) order.
func (a *ActiveSet) appendSite(y, x int32) {
	half := a.K / 2
	kyLo, kyHi := 0, a.K
	if d := half - int(y); d > 0 {
		kyLo = d
	}
	if d := a.H - int(y) + half; d < kyHi {
		kyHi = d
	}
	kxLo, kxHi := 0, a.K
	if d := half - int(x); d > 0 {
		kxLo = d
	}
	if d := a.W - int(x) + half; d < kxHi {
		kxHi = d
	}
	a.Ys = append(a.Ys, y)
	a.Xs = append(a.Xs, x)
	a.Clip = append(a.Clip, uint8(kyLo), uint8(kyHi), uint8(kxLo), uint8(kxHi))
}

// BuildFromFrame materializes the rulebook straight off a sparse
// frame's sorted COO coordinates in O(nnz) — no dense scan. The
// frame's entry set IS the active-site set of its two-channel tensor
// (entries with zero counts in both polarities are structurally
// excluded).
func (a *ActiveSet) BuildFromFrame(f *Frame, k int) {
	f.NNZ() // force lazy sort compaction before reading coordinates
	a.Reset(f.H, f.W, k)
	for i := range f.Ys {
		a.appendSite(f.Ys[i], f.Xs[i])
	}
}

// BuildFromTensor materializes the rulebook with a dense row-major
// activity scan — the fallback when no frame-coordinate shortcut
// exists, and the reference the delta path is tested against.
func (a *ActiveSet) BuildFromTensor(t *Tensor, k int) {
	a.Reset(t.H, t.W, k)
	for y := 0; y < t.H; y++ {
	pixel:
		for x := 0; x < t.W; x++ {
			for c := 0; c < t.C; c++ {
				if t.At(c, y, x) != 0 {
					a.appendSite(int32(y), int32(x))
					continue pixel
				}
			}
		}
	}
}

// Refine drops the sites no longer active in t, in place, preserving
// order — O(C·sites) instead of O(C·H·W). It is EXACT (not an
// approximation) when t was produced from this set by a submanifold
// layer (plus elementwise ops like ReLU): such layers write only at
// listed sites over a zeroed output, so t's activity is a subset of
// the list and checking listed sites finds all of it.
func (a *ActiveSet) Refine(t *Tensor) {
	if t.H != a.H || t.W != a.W {
		panic(fmt.Sprintf("sparse: Refine shape %dx%d != active set %dx%d", t.H, t.W, a.H, a.W))
	}
	j := 0
	for i := 0; i < len(a.Ys); i++ {
		y, x := int(a.Ys[i]), int(a.Xs[i])
		active := false
		for c := 0; c < t.C; c++ {
			if t.At(c, y, x) != 0 {
				active = true
				break
			}
		}
		if !active {
			continue
		}
		if j != i {
			a.Ys[j] = a.Ys[i]
			a.Xs[j] = a.Xs[i]
			copy(a.Clip[4*j:4*j+4], a.Clip[4*i:4*i+4])
		}
		j++
	}
	a.Ys = a.Ys[:j]
	a.Xs = a.Xs[:j]
	a.Clip = a.Clip[:4*j]
}

// SubmanifoldConv2DSites is SubmanifoldConv2DInto driven by a
// materialized rulebook instead of a dense activity scan. CONTRACT:
// as must be EXACTLY the active-site set of in (BuildFrom* on in, or
// Refine'd through the layer stack); under that contract the result
// is bit-identical to the serial kernel — sites are visited in the
// same row-major order and the clipped tap ranges skip exactly the
// taps the serial bounds checks skip.
func SubmanifoldConv2DSites(out, in *Tensor, f *Filter, as *ActiveSet) error {
	if err := checkSites(out, in, f, as); err != nil {
		return err
	}
	out.Zero()
	submanifoldSiteRange(out, in, f, as, 0, as.Sites())
	return nil
}

// checkSites validates the site-kernel invariants shared by the serial
// and tiled variants.
func checkSites(out, in *Tensor, f *Filter, as *ActiveSet) error {
	if in.C != f.InC {
		return fmt.Errorf("sparse: conv input channels %d != filter %d", in.C, f.InC)
	}
	if f.Stride != 1 || f.K%2 == 0 || f.Pad != f.K/2 {
		return fmt.Errorf("sparse: submanifold conv needs stride 1, odd K, pad K/2 (got s=%d k=%d p=%d)",
			f.Stride, f.K, f.Pad)
	}
	if out.C != f.OutC || out.H != in.H || out.W != in.W {
		return fmt.Errorf("sparse: conv output tensor %dx%dx%d != expected %dx%dx%d",
			out.C, out.H, out.W, f.OutC, in.H, in.W)
	}
	if as.H != in.H || as.W != in.W || as.K != f.K {
		return fmt.Errorf("sparse: active set %dx%d k=%d != input %dx%d k=%d",
			as.H, as.W, as.K, in.H, in.W, f.K)
	}
	return nil
}

// submanifoldSiteRange computes sites [lo, hi) of the rulebook with
// the same (oc, ic, ky, kx) accumulation order as submanifoldRows.
func submanifoldSiteRange(out, in *Tensor, f *Filter, as *ActiveSet, lo, hi int) {
	half := f.K / 2
	kk := f.K * f.K
	for s := lo; s < hi; s++ {
		oy, ox := int(as.Ys[s]), int(as.Xs[s])
		kyLo, kyHi := int(as.Clip[4*s]), int(as.Clip[4*s+1])
		kxLo, kxHi := int(as.Clip[4*s+2]), int(as.Clip[4*s+3])
		for oc := 0; oc < f.OutC; oc++ {
			var sum float32
			if f.Bias != nil {
				sum = f.Bias[oc]
			}
			wbase := f.Weights[oc*f.InC*kk:]
			for ic := 0; ic < f.InC; ic++ {
				wch := wbase[ic*kk:]
				for ky := kyLo; ky < kyHi; ky++ {
					iy := oy + ky - half
					wrow := wch[ky*f.K : ky*f.K+f.K]
					irow := in.Data[(ic*in.H+iy)*in.W:]
					for kx := kxLo; kx < kxHi; kx++ {
						sum += wrow[kx] * irow[ox+kx-half]
					}
				}
			}
			out.Set(oc, oy, ox, sum)
		}
	}
}

// siteZeroTask zeroes the output tensor in disjoint element ranges.
type siteZeroTask struct{ out *Tensor }

// siteComputeTask computes disjoint site ranges of the rulebook.
type siteComputeTask struct {
	out, in *Tensor
	f       *Filter
	as      *ActiveSet
}

var (
	siteZeroTasks    = sync.Pool{New: func() any { return new(siteZeroTask) }}
	siteComputeTasks = sync.Pool{New: func() any { return new(siteComputeTask) }}
)

func (t *siteZeroTask) RunShard(shard, shards int, _ *par.Scratch) {
	lo, hi := splitRange(shard, shards, len(t.out.Data))
	row := t.out.Data[lo:hi]
	for i := range row {
		row[i] = 0
	}
}

func (t *siteComputeTask) RunShard(shard, shards int, _ *par.Scratch) {
	lo, hi := splitRange(shard, shards, t.as.Sites())
	submanifoldSiteRange(t.out, t.in, t.f, t.as, lo, hi)
}

// SubmanifoldConv2DSitesTiled is SubmanifoldConv2DSites executed
// across pool shards: a sharded zero pass, then disjoint site ranges.
// Sites shard evenly regardless of their spatial distribution, so load
// balance does not depend on where in the frame the activity clusters.
// Bit-identical to the serial kernels under the same exact-set
// contract.
func SubmanifoldConv2DSitesTiled(out, in *Tensor, f *Filter, as *ActiveSet, pool *par.Pool, shards int) error {
	if pool.Size() <= 1 || shards <= 1 {
		return SubmanifoldConv2DSites(out, in, f, as)
	}
	if err := checkSites(out, in, f, as); err != nil {
		return err
	}
	zt := siteZeroTasks.Get().(*siteZeroTask)
	zt.out = out
	pool.Run(clampShards(shards, len(out.Data)), zt)
	zt.out = nil
	siteZeroTasks.Put(zt)
	if as.Sites() == 0 {
		return nil
	}
	ct := siteComputeTasks.Get().(*siteComputeTask)
	ct.out, ct.in, ct.f, ct.as = out, in, f, as
	pool.Run(clampShards(shards, as.Sites()), ct)
	ct.out, ct.in, ct.f, ct.as = nil, nil, nil, nil
	siteComputeTasks.Put(ct)
	return nil
}

// RulebookStats counts a cache's traffic. A hit means the previous
// frame's rulebook overlapped enough to be delta-revalidated; a miss
// is a full rebuild (first frame, geometry change, or a scene cut
// below the overlap threshold). SitesCarried/SitesNew split the sites
// of observed frames by whether their per-site structure was carried
// from the previous frame or computed fresh.
type RulebookStats struct {
	Frames       uint64 `json:"frames"`
	Hits         uint64 `json:"hits"`
	Misses       uint64 `json:"misses"`
	SitesCarried uint64 `json:"sites_carried"`
	SitesNew     uint64 `json:"sites_new"`
}

// HitRate returns Hits/Frames (0 before the first observation).
func (s RulebookStats) HitRate() float64 {
	if s.Frames == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Frames)
}

// DefaultMinOverlap is the delta-revalidation threshold: when fewer
// than 50% of a frame's sites are covered by the previous frame's
// rulebook (within the kernel's half-width — see coveredCount) the
// cache treats the scene as cut and rebuilds.
const DefaultMinOverlap = 0.5

// RulebookCache carries one stream's ActiveSet across frames,
// delta-revalidating it against each new frame's coordinates. It is
// safe for concurrent use, though the serving layer drives one cache
// per session under the session lock.
type RulebookCache struct {
	// Borrow/Release, when set, source the cache's two ActiveSet
	// buffers from a pool (mem.ActiveSetPool) instead of the heap;
	// Close hands them back.
	Borrow  func(h, w, k int) *ActiveSet
	Release func(*ActiveSet)

	k          int
	minOverlap float64

	mu    sync.Mutex
	cur   *ActiveSet // previous frame's rulebook (nil before the first)
	spare *ActiveSet // double buffer for the delta merge
	stats RulebookStats
}

// NewRulebookCache returns a cache for K x K submanifold windows
// (k <= 0 uses 3, the zoo's dominant kernel size) with the given
// overlap threshold (<= 0 uses DefaultMinOverlap).
func NewRulebookCache(k int, minOverlap float64) *RulebookCache {
	if k <= 0 {
		k = 3
	}
	if minOverlap <= 0 {
		minOverlap = DefaultMinOverlap
	}
	return &RulebookCache{k: k, minOverlap: minOverlap}
}

// K returns the cache's kernel size.
func (c *RulebookCache) K() int { return c.k }

// get sources an ActiveSet buffer.
func (c *RulebookCache) get(h, w int) *ActiveSet {
	if c.Borrow != nil {
		return c.Borrow(h, w, c.k)
	}
	return NewActiveSet(h, w, c.k)
}

// Observe folds one frame into the cache and returns the frame's
// rulebook plus whether the previous frame's structure was reused
// (hit). The returned set is owned by the cache and valid until the
// next Observe; callers refining it through a layer stack must do so
// before then (the serving path observes and consumes under one lock).
func (c *RulebookCache) Observe(f *Frame) (*ActiveSet, bool) {
	f.NNZ() // compact before reading coordinates
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.Frames++
	if c.cur == nil || c.cur.H != f.H || c.cur.W != f.W {
		if c.cur == nil {
			c.cur = c.get(f.H, f.W)
		}
		c.cur.BuildFromFrame(f, c.k)
		c.stats.Misses++
		c.stats.SitesNew += uint64(c.cur.Sites())
		return c.cur, false
	}
	covered := coveredCount(c.cur, f)
	overlap := 1.0 // an empty frame contradicts nothing
	if len(f.Ys) > 0 {
		overlap = float64(covered) / float64(len(f.Ys))
	}
	if overlap < c.minOverlap {
		c.cur.BuildFromFrame(f, c.k)
		c.stats.Misses++
		c.stats.SitesNew += uint64(c.cur.Sites())
		return c.cur, false
	}
	// Delta path: merge-walk the previous rulebook and the new frame,
	// carrying surviving sites' clip structure and computing only the
	// newly activated ones.
	if c.spare == nil {
		c.spare = c.get(f.H, f.W)
	}
	next := c.spare
	next.Reset(f.H, f.W, c.k)
	i, j := 0, 0
	prev := c.cur
	for j < len(f.Ys) {
		fy, fx := f.Ys[j], f.Xs[j]
		for i < len(prev.Ys) && (prev.Ys[i] < fy || (prev.Ys[i] == fy && prev.Xs[i] < fx)) {
			i++ // site departed
		}
		if i < len(prev.Ys) && prev.Ys[i] == fy && prev.Xs[i] == fx {
			next.Ys = append(next.Ys, fy)
			next.Xs = append(next.Xs, fx)
			next.Clip = append(next.Clip, prev.Clip[4*i:4*i+4]...)
			c.stats.SitesCarried++
			i++
		} else {
			next.appendSite(fy, fx)
			c.stats.SitesNew++
		}
		j++
	}
	c.spare, c.cur = c.cur, next
	c.stats.Hits++
	return c.cur, true
}

// coveredCount counts the frame's sites that lie within the kernel's
// half-width (Chebyshev distance K/2) of some site in the previous
// rulebook. This — not pixel-exact Jaccard — is the temporal-coherence
// measure that matters to a rulebook: a site whose activity shifted by
// less than the kernel radius still reads mostly the same K x K
// neighborhood, while event streams jitter active pixels frame to
// frame even when the scene structure is static. Pixel-exact matches
// (the merge walk in Observe) still gate which per-site structures are
// carried; coverage only decides delta-vs-rebuild. Alloc-free:
// binary searches over the rulebook's row-major site list.
func coveredCount(a *ActiveSet, f *Frame) int {
	r := int32(a.K / 2)
	n := 0
	for j := range f.Ys {
		if coveredAt(a, f.Ys[j], f.Xs[j], r) {
			n++
		}
	}
	return n
}

// coveredAt reports whether (y, x) has a site of a within Chebyshev
// distance r: for each candidate row, binary-search the first site at
// column >= x-r and check it is still <= x+r.
func coveredAt(a *ActiveSet, y, x, r int32) bool {
	for ty := y - r; ty <= y+r; ty++ {
		lo, hi := 0, len(a.Ys)
		for lo < hi {
			m := int(uint(lo+hi) >> 1)
			if a.Ys[m] < ty || (a.Ys[m] == ty && a.Xs[m] < x-r) {
				lo = m + 1
			} else {
				hi = m
			}
		}
		if lo < len(a.Ys) && a.Ys[lo] == ty && a.Xs[lo] <= x+r {
			return true
		}
	}
	return false
}

// Stats snapshots the counters.
func (c *RulebookCache) Stats() RulebookStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Close releases pooled buffers (no-op without a Release hook). The
// cache is reusable afterwards; the next Observe borrows fresh
// buffers.
func (c *RulebookCache) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.Release != nil {
		if c.cur != nil {
			c.Release(c.cur)
		}
		if c.spare != nil {
			c.Release(c.spare)
		}
	}
	c.cur, c.spare = nil, nil
}
