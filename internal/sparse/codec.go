package sparse

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Binary codec for sparse frames, so converted streams can be stored
// and replayed without re-running E2SF. Layout (little-endian):
//
//	magic   [4]byte "EVSF"
//	version uint16
//	h, w    uint16
//	t0, t1  int64
//	nnz     uint32
//	entries: y uint16, x uint16, pos float32, neg float32
const (
	frameMagic   = "EVSF"
	frameVersion = 1
)

// WriteFrame serializes one sparse frame.
func WriteFrame(w io.Writer, f *Frame) error {
	if f.H > math.MaxUint16 || f.W > math.MaxUint16 {
		return fmt.Errorf("sparse: frame %dx%d too large for codec", f.H, f.W)
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(frameMagic); err != nil {
		return err
	}
	hdr := make([]byte, 2+2+2+8+8+4)
	binary.LittleEndian.PutUint16(hdr[0:], frameVersion)
	binary.LittleEndian.PutUint16(hdr[2:], uint16(f.H))
	binary.LittleEndian.PutUint16(hdr[4:], uint16(f.W))
	binary.LittleEndian.PutUint64(hdr[6:], uint64(f.T0))
	binary.LittleEndian.PutUint64(hdr[14:], uint64(f.T1))
	binary.LittleEndian.PutUint32(hdr[22:], uint32(f.NNZ()))
	if _, err := bw.Write(hdr); err != nil {
		return err
	}
	rec := make([]byte, 2+2+4+4)
	for i := range f.Ys {
		binary.LittleEndian.PutUint16(rec[0:], uint16(f.Ys[i]))
		binary.LittleEndian.PutUint16(rec[2:], uint16(f.Xs[i]))
		binary.LittleEndian.PutUint32(rec[4:], math.Float32bits(f.Pos[i]))
		binary.LittleEndian.PutUint32(rec[8:], math.Float32bits(f.Neg[i]))
		if _, err := bw.Write(rec); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadFrame parses one sparse frame written by WriteFrame. It reads
// exactly one frame's bytes from r (no read-ahead), so frames can be
// concatenated; wrap r in a bufio.Reader externally for throughput.
func ReadFrame(r io.Reader) (*Frame, error) {
	magic := make([]byte, 4)
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, fmt.Errorf("sparse: reading magic: %w", err)
	}
	if string(magic) != frameMagic {
		return nil, fmt.Errorf("sparse: bad frame magic %q", magic)
	}
	hdr := make([]byte, 2+2+2+8+8+4)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, fmt.Errorf("sparse: reading frame header: %w", err)
	}
	if v := binary.LittleEndian.Uint16(hdr[0:]); v != frameVersion {
		return nil, fmt.Errorf("sparse: unsupported frame version %d", v)
	}
	f := NewFrame(
		int(binary.LittleEndian.Uint16(hdr[2:])),
		int(binary.LittleEndian.Uint16(hdr[4:])),
		int64(binary.LittleEndian.Uint64(hdr[6:])),
		int64(binary.LittleEndian.Uint64(hdr[14:])),
	)
	nnz := binary.LittleEndian.Uint32(hdr[22:])
	// Entries are strictly (Y, X)-sorted coordinates inside the frame,
	// so more than H*W of them cannot validate — reject the header
	// before trusting it.
	if uint64(nnz) > uint64(f.H)*uint64(f.W) {
		return nil, fmt.Errorf("sparse: frame claims %d entries for %dx%d", nnz, f.H, f.W)
	}
	if nnz > 0 {
		// Still untrusted: a 65535x65535 header admits ~4e9 entries the
		// body need not hold. Preallocate a bounded amount and grow from
		// what the reader actually delivers.
		pre := nnz
		if pre > 1<<16 {
			pre = 1 << 16
		}
		f.Ys = make([]int32, 0, pre)
		f.Xs = make([]int32, 0, pre)
		f.Pos = make([]float32, 0, pre)
		f.Neg = make([]float32, 0, pre)
	}
	rec := make([]byte, 2+2+4+4)
	for i := uint32(0); i < nnz; i++ {
		if _, err := io.ReadFull(r, rec); err != nil {
			return nil, fmt.Errorf("sparse: reading frame entry %d: %w", i, err)
		}
		f.Ys = append(f.Ys, int32(binary.LittleEndian.Uint16(rec[0:])))
		f.Xs = append(f.Xs, int32(binary.LittleEndian.Uint16(rec[2:])))
		f.Pos = append(f.Pos, math.Float32frombits(binary.LittleEndian.Uint32(rec[4:])))
		f.Neg = append(f.Neg, math.Float32frombits(binary.LittleEndian.Uint32(rec[8:])))
	}
	if err := f.Validate(); err != nil {
		return nil, fmt.Errorf("sparse: decoded frame invalid: %w", err)
	}
	return f, nil
}

// WriteFrames serializes a sequence of frames with a count prefix.
func WriteFrames(w io.Writer, frames []*Frame) error {
	var cnt [4]byte
	binary.LittleEndian.PutUint32(cnt[:], uint32(len(frames)))
	if _, err := w.Write(cnt[:]); err != nil {
		return err
	}
	for _, f := range frames {
		if err := WriteFrame(w, f); err != nil {
			return err
		}
	}
	return nil
}

// ReadFrames parses a sequence written by WriteFrames.
func ReadFrames(r io.Reader) ([]*Frame, error) {
	var cnt [4]byte
	if _, err := io.ReadFull(r, cnt[:]); err != nil {
		return nil, fmt.Errorf("sparse: reading frame count: %w", err)
	}
	n := binary.LittleEndian.Uint32(cnt[:])
	// The count is untrusted input; bound the preallocation (each frame
	// is at least a 30-byte header, append grows past the cap fine).
	pre := n
	if pre > 1<<12 {
		pre = 1 << 12
	}
	out := make([]*Frame, 0, pre)
	for i := uint32(0); i < n; i++ {
		f, err := ReadFrame(r)
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	return out, nil
}
