package sparse

import (
	"math"
	"math/rand"
	"testing"

	"evedge/internal/par"
)

// bitsEqual asserts exact bit equality (including zero signs and NaN
// payloads) between two same-length float32 slices.
func bitsEqual(t *testing.T, tag string, got, want []float32) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d != %d", tag, len(got), len(want))
	}
	for i := range got {
		if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
			t.Fatalf("%s: element %d = %x (%g), serial %x (%g)",
				tag, i, math.Float32bits(got[i]), got[i], math.Float32bits(want[i]), want[i])
		}
	}
}

// TestTiledKernelsBitIdentical is the tentpole property test: over
// randomized shapes, densities, filters, shard counts and worker
// counts, every tiled kernel must produce bit-for-bit the serial
// kernel's output. Negative weights and biases make cancellation (and
// hence accumulation-order sensitivity) likely, so any reordering
// would be caught.
func TestTiledKernelsBitIdentical(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	pools := []*par.Pool{par.New(2), par.New(3), par.New(8)}
	defer func() {
		for _, p := range pools {
			p.Close()
		}
	}()
	for trial := 0; trial < 25; trial++ {
		inC := 1 + r.Intn(4)
		outC := 1 + r.Intn(5)
		h := 5 + r.Intn(28)
		w := 5 + r.Intn(28)
		density := []float64{0.01, 0.1, 0.5, 1.0}[r.Intn(4)]
		in := NewTensor(inC, h, w)
		in.FillRandomSparse(r, density)

		pool := pools[r.Intn(len(pools))]
		shards := 1 + r.Intn(10)

		// Dense direct + gather-scatter conv share a filter; stride and
		// pad vary.
		k := 1 + r.Intn(4)
		stride := 1 + r.Intn(2)
		pad := r.Intn(k)
		f := randFilter(r, outC, inC, k, stride, pad)
		if oh, ow := f.OutShape(h, w); oh > 0 && ow > 0 {
			want := NewTensor(outC, oh, ow)
			if err := Conv2DInto(want, in, f); err != nil {
				t.Fatal(err)
			}
			got := NewTensor(outC, oh, ow)
			got.FillRandom(r) // tiled kernels must overwrite fully
			if err := Conv2DTiledInto(got, in, f, pool, shards); err != nil {
				t.Fatal(err)
			}
			bitsEqual(t, "Conv2DTiledInto", got.Data, want.Data)

			want2 := NewTensor(outC, oh, ow)
			if err := SparseConv2DInto(want2, in, f); err != nil {
				t.Fatal(err)
			}
			got2 := NewTensor(outC, oh, ow)
			got2.FillRandom(r)
			if err := SparseConv2DTiledInto(got2, in, f, pool, shards); err != nil {
				t.Fatal(err)
			}
			bitsEqual(t, "SparseConv2DTiledInto", got2.Data, want2.Data)
		}

		// Submanifold: stride 1, odd K, pad K/2.
		ks := []int{1, 3, 5}[r.Intn(3)]
		fs := randFilter(r, outC, inC, ks, 1, ks/2)
		wantS := NewTensor(outC, h, w)
		if err := SubmanifoldConv2DInto(wantS, in, f2sub(fs)); err != nil {
			t.Fatal(err)
		}
		gotS := NewTensor(outC, h, w)
		gotS.FillRandom(r)
		if err := SubmanifoldConv2DTiledInto(gotS, in, fs, pool, shards); err != nil {
			t.Fatal(err)
		}
		bitsEqual(t, "SubmanifoldConv2DTiledInto", gotS.Data, wantS.Data)

		// SpMM over a random CSR with the tensor reshaped as the dense
		// operand.
		rows := 2 + r.Intn(40)
		cols := 2 + r.Intn(20)
		dcols := 1 + r.Intn(16)
		var entries []COOEntry
		for i := 0; i < rows*cols/3; i++ {
			entries = append(entries, COOEntry{
				Row: int32(r.Intn(rows)), Col: int32(r.Intn(cols)), Val: r.Float32()*2 - 1,
			})
		}
		m, err := NewCSR(rows, cols, entries)
		if err != nil {
			t.Fatal(err)
		}
		d := NewMat(cols, dcols)
		for i := range d.Data {
			d.Data[i] = r.Float32()*2 - 1
		}
		wantM := NewMat(rows, dcols)
		if err := m.SpMMInto(wantM, d); err != nil {
			t.Fatal(err)
		}
		gotM := NewMat(rows, dcols)
		for i := range gotM.Data {
			gotM.Data[i] = r.Float32() // must be fully overwritten
		}
		if err := m.SpMMTiledInto(gotM, d, pool, shards); err != nil {
			t.Fatal(err)
		}
		bitsEqual(t, "SpMMTiledInto", gotM.Data, wantM.Data)
	}
}

// f2sub is an identity helper making it obvious the same filter feeds
// both submanifold kernels.
func f2sub(f *Filter) *Filter { return f }

// TestTiledSerialFallbacks: a nil pool, one shard, or deconv must take
// the serial path and still be correct.
func TestTiledSerialFallbacks(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	in := NewTensor(2, 9, 9)
	in.FillRandomSparse(r, 0.3)
	f := randFilter(r, 3, 2, 3, 1, 1)

	want, err := Conv2D(in, f)
	if err != nil {
		t.Fatal(err)
	}
	got := NewTensor(3, 9, 9)
	if err := Conv2DTiledInto(got, in, f, nil, 8); err != nil {
		t.Fatal(err)
	}
	bitsEqual(t, "nil pool", got.Data, want.Data)

	pool := par.New(4)
	defer pool.Close()
	got2 := NewTensor(3, 9, 9)
	if err := Conv2DTiledInto(got2, in, f, pool, 1); err != nil {
		t.Fatal(err)
	}
	bitsEqual(t, "one shard", got2.Data, want.Data)

	// Deconv routes to the serial scatter.
	fd := randFilter(r, 2, 2, 4, 2, 1)
	fd.Deconv = true
	wantD, err := Conv2D(in, fd)
	if err != nil {
		t.Fatal(err)
	}
	oh, ow := fd.OutShape(9, 9)
	gotD := NewTensor(2, oh, ow)
	if err := Conv2DTiledInto(gotD, in, fd, pool, 6); err != nil {
		t.Fatal(err)
	}
	bitsEqual(t, "deconv fallback", gotD.Data, wantD.Data)
	gotD2 := NewTensor(2, oh, ow)
	if err := SparseConv2DTiledInto(gotD2, in, fd, pool, 6); err != nil {
		t.Fatal(err)
	}
	bitsEqual(t, "sparse deconv fallback", gotD2.Data, wantD.Data)
}

// TestTiledShapeErrors: shape validation must match the serial kernels.
func TestTiledShapeErrors(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	pool := par.New(2)
	defer pool.Close()
	in := NewTensor(2, 8, 8)
	in.FillRandomSparse(r, 0.2)
	f := randFilter(r, 3, 2, 3, 1, 1)
	bad := NewTensor(3, 7, 8)
	if err := Conv2DTiledInto(bad, in, f, pool, 4); err == nil {
		t.Fatal("Conv2DTiledInto accepted a mis-shaped output")
	}
	if err := SparseConv2DTiledInto(bad, in, f, pool, 4); err == nil {
		t.Fatal("SparseConv2DTiledInto accepted a mis-shaped output")
	}
	if err := SubmanifoldConv2DTiledInto(bad, in, f, pool, 4); err == nil {
		t.Fatal("SubmanifoldConv2DTiledInto accepted a mis-shaped output")
	}
	fbad := randFilter(r, 3, 2, 2, 1, 1) // even K: not submanifold-eligible
	good := NewTensor(3, 8, 8)
	if err := SubmanifoldConv2DTiledInto(good, in, fbad, pool, 4); err == nil {
		t.Fatal("SubmanifoldConv2DTiledInto accepted an even kernel")
	}
	wrongC := NewTensor(3, 8, 8)
	fc := randFilter(r, 3, 4, 3, 1, 1)
	if err := Conv2DTiledInto(wrongC, in, fc, pool, 4); err == nil {
		t.Fatal("Conv2DTiledInto accepted mismatched input channels")
	}

	m, err := NewCSR(4, 4, []COOEntry{{Row: 1, Col: 2, Val: 1}})
	if err != nil {
		t.Fatal(err)
	}
	dBad := NewMat(3, 2)
	outBad := NewMat(4, 2)
	if err := m.SpMMTiledInto(outBad, dBad, pool, 2); err == nil {
		t.Fatal("SpMMTiledInto accepted a shape mismatch")
	}
	dOK := NewMat(4, 2)
	if err := m.SpMMTiledInto(NewMat(3, 2), dOK, pool, 2); err == nil {
		t.Fatal("SpMMTiledInto accepted a mis-shaped output")
	}
}

// TestDeconvIntoParity closes the PR 8 gap: deconv2DInto against a
// dirty pooled-style output must match the fresh-allocation deconv2D
// bit for bit, with and without bias.
func TestDeconvIntoParity(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		inC := 1 + r.Intn(3)
		outC := 1 + r.Intn(4)
		h := 4 + r.Intn(12)
		w := 4 + r.Intn(12)
		in := NewTensor(inC, h, w)
		in.FillRandomSparse(r, []float64{0.05, 0.3, 1.0}[r.Intn(3)])
		k := 2 + r.Intn(3)
		stride := 1 + r.Intn(2)
		f := randFilter(r, outC, inC, k, stride, r.Intn(k))
		f.Deconv = true
		if trial%2 == 0 {
			f.Bias = nil // exercise the Zero() init path too
		}
		oh, ow := f.OutShape(h, w)
		if oh <= 0 || ow <= 0 {
			continue
		}
		want, err := Conv2D(in, f) // routes to deconv2D, fresh output
		if err != nil {
			t.Fatal(err)
		}
		got := NewTensor(outC, oh, ow)
		got.FillRandom(r) // dirty, as a pooled tensor would be
		if err := Conv2DInto(got, in, f); err != nil {
			t.Fatal(err)
		}
		bitsEqual(t, "deconv2DInto", got.Data, want.Data)
	}
}
