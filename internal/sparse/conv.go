package sparse

import "fmt"

// Filter is a 2D convolution kernel bank: OutC filters over InC input
// channels with a square K x K window. Weights are laid out
// [outc][inc][ky][kx]; Bias has one entry per output channel (may be
// nil).
type Filter struct {
	OutC, InC, K int
	Stride, Pad  int
	Weights      []float32
	Bias         []float32
	Deconv       bool // transposed convolution (upsampling) semantics
	DeconvOutPad int
}

// NewFilter allocates a zero-weight filter bank.
func NewFilter(outC, inC, k, stride, pad int) *Filter {
	if outC <= 0 || inC <= 0 || k <= 0 || stride <= 0 || pad < 0 {
		panic(fmt.Sprintf("sparse: invalid filter %d/%d k=%d s=%d p=%d", outC, inC, k, stride, pad))
	}
	return &Filter{
		OutC: outC, InC: inC, K: k, Stride: stride, Pad: pad,
		Weights: make([]float32, outC*inC*k*k),
	}
}

// W returns the weight for (outc, inc, ky, kx).
func (f *Filter) W(oc, ic, ky, kx int) float32 {
	return f.Weights[((oc*f.InC+ic)*f.K+ky)*f.K+kx]
}

// SetW stores a weight.
func (f *Filter) SetW(oc, ic, ky, kx int, v float32) {
	f.Weights[((oc*f.InC+ic)*f.K+ky)*f.K+kx] = v
}

// OutShape returns the output spatial size for an h x w input.
func (f *Filter) OutShape(h, w int) (oh, ow int) {
	if f.Deconv {
		return (h-1)*f.Stride - 2*f.Pad + f.K + f.DeconvOutPad,
			(w-1)*f.Stride - 2*f.Pad + f.K + f.DeconvOutPad
	}
	return (h+2*f.Pad-f.K)/f.Stride + 1, (w+2*f.Pad-f.K)/f.Stride + 1
}

// MACs returns the dense multiply-accumulate count for an h x w input:
// OutC * OH * OW * InC * K * K. This is the fixed cost the baseline
// pays regardless of how many events the frame holds.
func (f *Filter) MACs(h, w int) int64 {
	oh, ow := f.OutShape(h, w)
	return int64(f.OutC) * int64(oh) * int64(ow) * int64(f.InC) * int64(f.K) * int64(f.K)
}

// checkOut validates a caller-supplied output tensor against the
// filter's expected shape for an h x w input.
func checkOut(out *Tensor, f *Filter, h, w int) (oh, ow int, err error) {
	oh, ow = f.OutShape(h, w)
	if oh <= 0 || ow <= 0 {
		return 0, 0, fmt.Errorf("sparse: conv output %dx%d is empty", oh, ow)
	}
	if out.C != f.OutC || out.H != oh || out.W != ow {
		return 0, 0, fmt.Errorf("sparse: conv output tensor %dx%dx%d != expected %dx%dx%d",
			out.C, out.H, out.W, f.OutC, oh, ow)
	}
	return oh, ow, nil
}

// Conv2D computes the dense direct convolution of in with f.
func Conv2D(in *Tensor, f *Filter) (*Tensor, error) {
	if in.C != f.InC {
		return nil, fmt.Errorf("sparse: conv input channels %d != filter %d", in.C, f.InC)
	}
	if f.Deconv {
		return deconv2D(in, f)
	}
	oh, ow := f.OutShape(in.H, in.W)
	if oh <= 0 || ow <= 0 {
		return nil, fmt.Errorf("sparse: conv output %dx%d is empty", oh, ow)
	}
	out := NewTensor(f.OutC, oh, ow)
	if err := Conv2DInto(out, in, f); err != nil {
		return nil, err
	}
	return out, nil
}

// Conv2DInto is Conv2D writing into a caller-supplied (possibly
// pooled) output tensor; every element is overwritten. The inner
// loops are identical to Conv2D's, so results are bit-identical.
func Conv2DInto(out *Tensor, in *Tensor, f *Filter) error {
	if in.C != f.InC {
		return fmt.Errorf("sparse: conv input channels %d != filter %d", in.C, f.InC)
	}
	if f.Deconv {
		return deconv2DInto(out, in, f)
	}
	oh, ow, err := checkOut(out, f, in.H, in.W)
	if err != nil {
		return err
	}
	for oc := 0; oc < f.OutC; oc++ {
		var bias float32
		if f.Bias != nil {
			bias = f.Bias[oc]
		}
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				sum := bias
				for ic := 0; ic < f.InC; ic++ {
					for ky := 0; ky < f.K; ky++ {
						iy := oy*f.Stride + ky - f.Pad
						if iy < 0 || iy >= in.H {
							continue
						}
						for kx := 0; kx < f.K; kx++ {
							ix := ox*f.Stride + kx - f.Pad
							if ix < 0 || ix >= in.W {
								continue
							}
							sum += f.W(oc, ic, ky, kx) * in.At(ic, iy, ix)
						}
					}
				}
				out.Set(oc, oy, ox, sum)
			}
		}
	}
	return nil
}

// deconv2D computes a transposed convolution by scattering each input
// site through the kernel.
func deconv2D(in *Tensor, f *Filter) (*Tensor, error) {
	oh, ow := f.OutShape(in.H, in.W)
	if oh <= 0 || ow <= 0 {
		return nil, fmt.Errorf("sparse: deconv output %dx%d is empty", oh, ow)
	}
	out := NewTensor(f.OutC, oh, ow)
	if err := deconv2DInto(out, in, f); err != nil {
		return nil, err
	}
	return out, nil
}

// deconv2DInto is deconv2D writing into a caller-supplied tensor.
func deconv2DInto(out *Tensor, in *Tensor, f *Filter) error {
	oh, ow, err := checkOut(out, f, in.H, in.W)
	if err != nil {
		return fmt.Errorf("sparse: deconv: %w", err)
	}
	if f.Bias != nil {
		for oc := 0; oc < f.OutC; oc++ {
			for y := 0; y < oh; y++ {
				for x := 0; x < ow; x++ {
					out.Set(oc, y, x, f.Bias[oc])
				}
			}
		}
	} else {
		out.Zero()
	}
	for ic := 0; ic < f.InC; ic++ {
		for iy := 0; iy < in.H; iy++ {
			for ix := 0; ix < in.W; ix++ {
				v := in.At(ic, iy, ix)
				if v == 0 {
					continue
				}
				for oc := 0; oc < f.OutC; oc++ {
					for ky := 0; ky < f.K; ky++ {
						oy := iy*f.Stride + ky - f.Pad
						if oy < 0 || oy >= oh {
							continue
						}
						for kx := 0; kx < f.K; kx++ {
							ox := ix*f.Stride + kx - f.Pad
							if ox < 0 || ox >= ow {
								continue
							}
							out.Add(oc, oy, ox, f.W(oc, ic, ky, kx)*v)
						}
					}
				}
			}
		}
	}
	return nil
}

// Im2colConv2D computes the same dense convolution via im2col + GEMM,
// the formulation GPU libraries use; it cross-checks Conv2D and backs
// the GEMM-oriented perf model.
func Im2colConv2D(in *Tensor, f *Filter) (*Tensor, error) {
	if in.C != f.InC {
		return nil, fmt.Errorf("sparse: conv input channels %d != filter %d", in.C, f.InC)
	}
	if f.Deconv {
		return deconv2D(in, f) // no GEMM path for deconv; direct scatter
	}
	oh, ow := f.OutShape(in.H, in.W)
	if oh <= 0 || ow <= 0 {
		return nil, fmt.Errorf("sparse: conv output %dx%d is empty", oh, ow)
	}
	kk := f.InC * f.K * f.K
	cols := NewMat(kk, oh*ow)
	for ic := 0; ic < f.InC; ic++ {
		for ky := 0; ky < f.K; ky++ {
			for kx := 0; kx < f.K; kx++ {
				row := (ic*f.K+ky)*f.K + kx
				for oy := 0; oy < oh; oy++ {
					iy := oy*f.Stride + ky - f.Pad
					for ox := 0; ox < ow; ox++ {
						ix := ox*f.Stride + kx - f.Pad
						var v float32
						if iy >= 0 && iy < in.H && ix >= 0 && ix < in.W {
							v = in.At(ic, iy, ix)
						}
						cols.Set(row, oy*ow+ox, v)
					}
				}
			}
		}
	}
	wmat := &Mat{Rows: f.OutC, Cols: kk, Data: f.Weights}
	prod := MatMul(wmat, cols)
	out := &Tensor{C: f.OutC, H: oh, W: ow, Data: prod.Data}
	if f.Bias != nil {
		for oc := 0; oc < f.OutC; oc++ {
			for i := oc * oh * ow; i < (oc+1)*oh*ow; i++ {
				out.Data[i] += f.Bias[oc]
			}
		}
	}
	return out, nil
}

// SparseConv2D computes the convolution touching only active input
// sites: each nonzero input value is scattered through the kernel into
// the affected output positions (gather-scatter / "rulebook" style).
// The arithmetic cost is proportional to nnz(in) * OutC * K * K rather
// than to the full output volume, which is the efficiency E2SF unlocks.
// The result is numerically identical to Conv2D minus the bias at
// positions with no contributing inputs (bias is applied everywhere,
// matching dense semantics).
func SparseConv2D(in *Tensor, f *Filter) (*Tensor, error) {
	if in.C != f.InC {
		return nil, fmt.Errorf("sparse: conv input channels %d != filter %d", in.C, f.InC)
	}
	if f.Deconv {
		return deconv2D(in, f)
	}
	oh, ow := f.OutShape(in.H, in.W)
	if oh <= 0 || ow <= 0 {
		return nil, fmt.Errorf("sparse: conv output %dx%d is empty", oh, ow)
	}
	out := NewTensor(f.OutC, oh, ow)
	if err := SparseConv2DInto(out, in, f); err != nil {
		return nil, err
	}
	return out, nil
}

// SparseConv2DInto is SparseConv2D writing into a caller-supplied
// (possibly pooled) output tensor. The output is fully initialized
// (bias fill or zero) before the scatter, so pooled tensors need no
// prior clearing; accumulation order matches SparseConv2D exactly.
func SparseConv2DInto(out *Tensor, in *Tensor, f *Filter) error {
	if in.C != f.InC {
		return fmt.Errorf("sparse: conv input channels %d != filter %d", in.C, f.InC)
	}
	if f.Deconv {
		return deconv2DInto(out, in, f)
	}
	oh, ow, err := checkOut(out, f, in.H, in.W)
	if err != nil {
		return err
	}
	if f.Bias != nil {
		for oc := 0; oc < f.OutC; oc++ {
			base := oc * oh * ow
			for i := 0; i < oh*ow; i++ {
				out.Data[base+i] = f.Bias[oc]
			}
		}
	} else {
		out.Zero()
	}
	for ic := 0; ic < in.C; ic++ {
		for iy := 0; iy < in.H; iy++ {
			for ix := 0; ix < in.W; ix++ {
				v := in.At(ic, iy, ix)
				if v == 0 {
					continue
				}
				// Input (iy, ix) contributes to outputs (oy, ox) where
				// oy*S + ky - P == iy for some ky in [0, K).
				for ky := 0; ky < f.K; ky++ {
					num := iy + f.Pad - ky
					if num < 0 || num%f.Stride != 0 {
						continue
					}
					oy := num / f.Stride
					if oy >= oh {
						continue
					}
					for kx := 0; kx < f.K; kx++ {
						numx := ix + f.Pad - kx
						if numx < 0 || numx%f.Stride != 0 {
							continue
						}
						ox := numx / f.Stride
						if ox >= ow {
							continue
						}
						for oc := 0; oc < f.OutC; oc++ {
							out.Add(oc, oy, ox, f.W(oc, ic, ky, kx)*v)
						}
					}
				}
			}
		}
	}
	return nil
}

// SubmanifoldConv2D computes a submanifold sparse convolution: outputs
// are produced only at sites that are active in the input, preventing
// the active set from dilating layer after layer. Requires stride 1
// and equal input/output spatial size (K odd, Pad == K/2).
func SubmanifoldConv2D(in *Tensor, f *Filter) (*Tensor, error) {
	if in.C != f.InC {
		return nil, fmt.Errorf("sparse: conv input channels %d != filter %d", in.C, f.InC)
	}
	if f.Stride != 1 || f.K%2 == 0 || f.Pad != f.K/2 {
		return nil, fmt.Errorf("sparse: submanifold conv needs stride 1, odd K, pad K/2 (got s=%d k=%d p=%d)",
			f.Stride, f.K, f.Pad)
	}
	out := NewTensor(f.OutC, in.H, in.W)
	if err := SubmanifoldConv2DInto(out, in, f); err != nil {
		return nil, err
	}
	return out, nil
}

// SubmanifoldConv2DInto is SubmanifoldConv2D writing into a
// caller-supplied (possibly pooled) output tensor; inactive sites are
// zeroed. Active sites are found by a direct row-major scan instead
// of materializing an ActiveSites slice, so the kernel allocates
// nothing, and the per-(oc, ic) weight-row base slices are hoisted
// outside the site loop (see submanifoldRows) — same visit and
// accumulation order, bit-identical results.
func SubmanifoldConv2DInto(out *Tensor, in *Tensor, f *Filter) error {
	if in.C != f.InC {
		return fmt.Errorf("sparse: conv input channels %d != filter %d", in.C, f.InC)
	}
	if f.Stride != 1 || f.K%2 == 0 || f.Pad != f.K/2 {
		return fmt.Errorf("sparse: submanifold conv needs stride 1, odd K, pad K/2 (got s=%d k=%d p=%d)",
			f.Stride, f.K, f.Pad)
	}
	if out.C != f.OutC || out.H != in.H || out.W != in.W {
		return fmt.Errorf("sparse: conv output tensor %dx%dx%d != expected %dx%dx%d",
			out.C, out.H, out.W, f.OutC, in.H, in.W)
	}
	out.Zero()
	submanifoldRows(out, in, f, 0, in.H)
	return nil
}

// SparseConvMACs estimates the multiply-accumulate count of the sparse
// path for a frame of the given active-site count: each active input
// site scatters through OutC * K * K weights per input channel.
func SparseConvMACs(activeSites int, f *Filter) int64 {
	return int64(activeSites) * int64(f.InC) * int64(f.OutC) * int64(f.K) * int64(f.K)
}

// MaxPool2D computes a max pooling with a k x k window and the given
// stride.
func MaxPool2D(in *Tensor, k, stride int) (*Tensor, error) {
	if k <= 0 || stride <= 0 {
		return nil, fmt.Errorf("sparse: invalid pool k=%d stride=%d", k, stride)
	}
	oh := (in.H-k)/stride + 1
	ow := (in.W-k)/stride + 1
	if oh <= 0 || ow <= 0 {
		return nil, fmt.Errorf("sparse: pool output %dx%d is empty", oh, ow)
	}
	out := NewTensor(in.C, oh, ow)
	for c := 0; c < in.C; c++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				best := in.At(c, oy*stride, ox*stride)
				for ky := 0; ky < k; ky++ {
					for kx := 0; kx < k; kx++ {
						if v := in.At(c, oy*stride+ky, ox*stride+kx); v > best {
							best = v
						}
					}
				}
				out.Set(c, oy, ox, best)
			}
		}
	}
	return out, nil
}

// AvgPool2D computes average pooling with a k x k window and stride.
func AvgPool2D(in *Tensor, k, stride int) (*Tensor, error) {
	if k <= 0 || stride <= 0 {
		return nil, fmt.Errorf("sparse: invalid pool k=%d stride=%d", k, stride)
	}
	oh := (in.H-k)/stride + 1
	ow := (in.W-k)/stride + 1
	if oh <= 0 || ow <= 0 {
		return nil, fmt.Errorf("sparse: pool output %dx%d is empty", oh, ow)
	}
	out := NewTensor(in.C, oh, ow)
	inv := 1 / float32(k*k)
	for c := 0; c < in.C; c++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				var sum float32
				for ky := 0; ky < k; ky++ {
					for kx := 0; kx < k; kx++ {
						sum += in.At(c, oy*stride+ky, ox*stride+kx)
					}
				}
				out.Set(c, oy, ox, sum*inv)
			}
		}
	}
	return out, nil
}
