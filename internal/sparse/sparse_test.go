package sparse

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTensorBasics(t *testing.T) {
	x := NewTensor(2, 3, 4)
	if x.Numel() != 24 {
		t.Fatalf("numel=%d", x.Numel())
	}
	x.Set(1, 2, 3, 5)
	if x.At(1, 2, 3) != 5 {
		t.Fatal("set/at broken")
	}
	x.Add(1, 2, 3, 2)
	if x.At(1, 2, 3) != 7 {
		t.Fatal("add broken")
	}
	if x.NNZ() != 1 || x.Density() != 1.0/24 {
		t.Fatalf("nnz=%d density=%f", x.NNZ(), x.Density())
	}
	c := x.Clone()
	c.Set(0, 0, 0, 9)
	if x.At(0, 0, 0) != 0 {
		t.Fatal("clone shares storage")
	}
	x.Zero()
	if x.NNZ() != 0 {
		t.Fatal("zero failed")
	}
}

func TestTensorPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on bad shape")
		}
	}()
	NewTensor(0, 1, 1)
}

func TestActiveSites(t *testing.T) {
	x := NewTensor(2, 3, 3)
	x.Set(0, 1, 1, 1)
	x.Set(1, 1, 1, 2) // same pixel, other channel
	x.Set(0, 2, 0, 3)
	sites := x.ActiveSites()
	if len(sites) != 2 {
		t.Fatalf("sites=%v", sites)
	}
	if sites[0] != (Site{Y: 1, X: 1}) || sites[1] != (Site{Y: 2, X: 0}) {
		t.Fatalf("sites=%v", sites)
	}
}

func TestReLUScaleAdd(t *testing.T) {
	x := NewTensor(1, 1, 3)
	copy(x.Data, []float32{-1, 0, 2})
	x.ReLU()
	if x.Data[0] != 0 || x.Data[2] != 2 {
		t.Fatalf("relu: %v", x.Data)
	}
	x.Scale(3)
	if x.Data[2] != 6 {
		t.Fatalf("scale: %v", x.Data)
	}
	y := NewTensor(1, 1, 3)
	copy(y.Data, []float32{1, 1, 1})
	x.AddTensor(y)
	if x.Data[0] != 1 || x.Data[2] != 7 {
		t.Fatalf("addtensor: %v", x.Data)
	}
}

func TestMatMul(t *testing.T) {
	a := NewMat(2, 3)
	copy(a.Data, []float32{1, 2, 3, 4, 5, 6})
	b := NewMat(3, 2)
	copy(b.Data, []float32{7, 8, 9, 10, 11, 12})
	c := MatMul(a, b)
	want := []float32{58, 64, 139, 154}
	for i, v := range want {
		if c.Data[i] != v {
			t.Fatalf("matmul[%d]=%f want %f", i, c.Data[i], v)
		}
	}
}

func TestFrameBuilderAndValidate(t *testing.T) {
	b := NewFrameBuilder(4, 5, 0, 100)
	b.AddEvent(2, 3, true)
	b.AddEvent(2, 3, true)
	b.AddEvent(2, 3, false)
	b.AddEvent(0, 0, false)
	if b.Count() != 2 {
		t.Fatalf("count=%d", b.Count())
	}
	f := b.Build()
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	if f.NNZ() != 2 {
		t.Fatalf("nnz=%d", f.NNZ())
	}
	p, n := f.Get(2, 3)
	if p != 2 || n != 1 {
		t.Fatalf("get=(%f,%f)", p, n)
	}
	if f.EventCount() != 4 {
		t.Fatalf("events=%f", f.EventCount())
	}
	if f.Density() != 0.1 {
		t.Fatalf("density=%f", f.Density())
	}
	// builder resets
	if b.Count() != 0 {
		t.Fatal("builder did not reset")
	}
}

func TestFrameSetGetDense(t *testing.T) {
	f := NewFrame(3, 3, 0, 10)
	f.Set(1, 1, 2, 0)
	f.Set(0, 2, 0, 1)
	f.Set(1, 1, 3, 1) // overwrite
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	p, n := f.Get(1, 1)
	if p != 3 || n != 1 {
		t.Fatalf("get=(%f,%f)", p, n)
	}
	d := f.Dense()
	if d.At(0, 1, 1) != 3 || d.At(1, 1, 1) != 1 || d.At(0, 0, 2) != 0 || d.At(1, 0, 2) != 1 {
		t.Fatal("dense expansion wrong")
	}
	back, err := FromDense(d, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if back.NNZ() != f.NNZ() {
		t.Fatalf("round trip nnz %d != %d", back.NNZ(), f.NNZ())
	}
}

func TestMergeModes(t *testing.T) {
	a := NewFrame(4, 4, 0, 10)
	a.Set(1, 1, 2, 0)
	a.Set(2, 2, 0, 2)
	b := NewFrame(4, 4, 10, 20)
	b.Set(1, 1, 2, 2)
	b.Set(3, 3, 4, 0)

	sum := MergeAdd(a, b)
	if err := sum.Validate(); err != nil {
		t.Fatal(err)
	}
	if p, n := sum.Get(1, 1); p != 4 || n != 2 {
		t.Fatalf("add (1,1)=(%f,%f)", p, n)
	}
	if sum.NNZ() != 3 {
		t.Fatalf("add nnz=%d", sum.NNZ())
	}
	if sum.T0 != 0 || sum.T1 != 20 {
		t.Fatalf("time union %d %d", sum.T0, sum.T1)
	}

	avg := MergeAverage(a, b)
	if p, _ := avg.Get(1, 1); p != 2 {
		t.Fatalf("avg (1,1) pos=%f", p)
	}
	if p, _ := avg.Get(3, 3); p != 2 {
		t.Fatalf("avg (3,3) pos=%f", p)
	}

	// event conservation under cAdd
	if sum.EventCount() != a.EventCount()+b.EventCount() {
		t.Fatal("cAdd loses events")
	}
}

func TestDensityChange(t *testing.T) {
	a := NewFrame(10, 10, 0, 1)
	for i := int32(0); i < 10; i++ {
		a.Set(i, 0, 1, 0)
	}
	b := NewFrame(10, 10, 1, 2)
	for i := int32(0); i < 15; i++ {
		b.Set(i%10, i/10, 1, 0)
	}
	if d := DensityChange(a, b); d < 0.49 || d > 0.51 {
		t.Fatalf("density change=%f want 0.5", d)
	}
	if DensityChange(a, a) != 0 {
		t.Fatal("self change nonzero")
	}
	empty := NewFrame(10, 10, 0, 1)
	if DensityChange(empty, empty) != 0 {
		t.Fatal("empty change nonzero")
	}
}

func TestCSR(t *testing.T) {
	entries := []COOEntry{
		{0, 1, 2}, {1, 0, 3}, {1, 2, 4}, {0, 1, 1}, // duplicate sums to 3
		{2, 2, 0}, // explicit zero dropped
	}
	m, err := NewCSR(3, 3, entries)
	if err != nil {
		t.Fatal(err)
	}
	if m.NNZ() != 3 {
		t.Fatalf("nnz=%d", m.NNZ())
	}
	if m.At(0, 1) != 3 || m.At(1, 0) != 3 || m.At(1, 2) != 4 || m.At(2, 2) != 0 {
		t.Fatal("At wrong")
	}
	y, err := m.SpMV([]float32{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if y[0] != 6 || y[1] != 15 || y[2] != 0 {
		t.Fatalf("spmv=%v", y)
	}
	if _, err := m.SpMV([]float32{1}); err == nil {
		t.Fatal("bad vector accepted")
	}
	if _, err := NewCSR(2, 2, []COOEntry{{5, 0, 1}}); err == nil {
		t.Fatal("out of bounds entry accepted")
	}
}

func TestCSRSpMMMatchesDense(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	entries := make([]COOEntry, 0, 40)
	for i := 0; i < 40; i++ {
		entries = append(entries, COOEntry{Row: int32(r.Intn(8)), Col: int32(r.Intn(6)), Val: r.Float32()})
	}
	m, err := NewCSR(8, 6, entries)
	if err != nil {
		t.Fatal(err)
	}
	d := NewMat(6, 5)
	for i := range d.Data {
		d.Data[i] = r.Float32()
	}
	got, err := m.SpMM(d)
	if err != nil {
		t.Fatal(err)
	}
	want := MatMul(m.Dense(), d)
	for i := range want.Data {
		if diff := got.Data[i] - want.Data[i]; diff > 1e-4 || diff < -1e-4 {
			t.Fatalf("spmm[%d]=%f want %f", i, got.Data[i], want.Data[i])
		}
	}
	// transpose twice is identity
	tt := m.Transpose().Transpose()
	for i := 0; i < 8; i++ {
		for j := 0; j < 6; j++ {
			if tt.At(i, j) != m.At(i, j) {
				t.Fatal("double transpose differs")
			}
		}
	}
}

func randFilter(r *rand.Rand, outC, inC, k, stride, pad int) *Filter {
	f := NewFilter(outC, inC, k, stride, pad)
	for i := range f.Weights {
		f.Weights[i] = r.Float32()*2 - 1
	}
	f.Bias = make([]float32, outC)
	for i := range f.Bias {
		f.Bias[i] = r.Float32()
	}
	return f
}

func TestConvKnownValues(t *testing.T) {
	// 1x3x3 input, 1 filter 2x2 stride 1 pad 0, all-ones weights.
	in := NewTensor(1, 3, 3)
	for i := range in.Data {
		in.Data[i] = float32(i + 1) // 1..9
	}
	f := NewFilter(1, 1, 2, 1, 0)
	for i := range f.Weights {
		f.Weights[i] = 1
	}
	out, err := Conv2D(in, f)
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{12, 16, 24, 28}
	for i, v := range want {
		if out.Data[i] != v {
			t.Fatalf("conv[%d]=%f want %f", i, out.Data[i], v)
		}
	}
}

func TestIm2colMatchesDirect(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for _, cfg := range []struct{ c, h, w, oc, k, s, p int }{
		{1, 8, 8, 4, 3, 1, 1},
		{3, 10, 12, 8, 3, 2, 1},
		{2, 7, 7, 5, 5, 1, 2},
		{4, 6, 6, 2, 1, 1, 0},
	} {
		in := NewTensor(cfg.c, cfg.h, cfg.w)
		in.FillRandom(r)
		f := randFilter(r, cfg.oc, cfg.c, cfg.k, cfg.s, cfg.p)
		a, err := Conv2D(in, f)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Im2colConv2D(in, f)
		if err != nil {
			t.Fatal(err)
		}
		if d := MaxAbsDiff(a, b); d > 1e-4 {
			t.Fatalf("cfg %+v: im2col differs by %g", cfg, d)
		}
	}
}

func TestSparseConvMatchesDense(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for _, cfg := range []struct {
		c, h, w, oc, k, s, p int
		density              float64
	}{
		{2, 12, 12, 4, 3, 1, 1, 0.05},
		{2, 16, 16, 8, 3, 2, 1, 0.10},
		{1, 9, 9, 3, 5, 1, 2, 0.30},
		{2, 10, 10, 4, 4, 2, 1, 0.02},
	} {
		in := NewTensor(cfg.c, cfg.h, cfg.w)
		in.FillRandomSparse(r, cfg.density)
		f := randFilter(r, cfg.oc, cfg.c, cfg.k, cfg.s, cfg.p)
		dense, err := Conv2D(in, f)
		if err != nil {
			t.Fatal(err)
		}
		sp, err := SparseConv2D(in, f)
		if err != nil {
			t.Fatal(err)
		}
		if d := MaxAbsDiff(dense, sp); d > 1e-4 {
			t.Fatalf("cfg %+v: sparse conv differs by %g", cfg, d)
		}
	}
}

// Property: sparse convolution equals dense convolution for random
// sparse inputs and random odd-kernel filters.
func TestSparseConvProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := 1 + r.Intn(3)
		h := 6 + r.Intn(8)
		w := 6 + r.Intn(8)
		k := []int{1, 3, 5}[r.Intn(3)]
		s := 1 + r.Intn(2)
		p := r.Intn(k)
		in := NewTensor(c, h, w)
		in.FillRandomSparse(r, 0.02+r.Float64()*0.2)
		fl := randFilter(r, 1+r.Intn(4), c, k, s, p)
		a, errA := Conv2D(in, fl)
		b, errB := SparseConv2D(in, fl)
		if errA != nil || errB != nil {
			return errA != nil && errB != nil // both reject equally
		}
		return MaxAbsDiff(a, b) < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSubmanifoldConv(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	in := NewTensor(2, 10, 10)
	in.FillRandomSparse(r, 0.1)
	f := randFilter(r, 4, 2, 3, 1, 1)
	out, err := SubmanifoldConv2D(in, f)
	if err != nil {
		t.Fatal(err)
	}
	// Active set does not dilate: outputs only where input was active.
	inSites := map[Site]bool{}
	for _, s := range in.ActiveSites() {
		inSites[s] = true
	}
	for _, s := range out.ActiveSites() {
		if !inSites[s] {
			t.Fatalf("submanifold produced output at inactive site %v", s)
		}
	}
	// At active sites, values agree with dense conv.
	dense, err := Conv2D(in, f)
	if err != nil {
		t.Fatal(err)
	}
	for s := range inSites {
		for c := 0; c < out.C; c++ {
			d := dense.At(c, int(s.Y), int(s.X)) - out.At(c, int(s.Y), int(s.X))
			if d > 1e-4 || d < -1e-4 {
				t.Fatalf("submanifold value differs at %v c=%d", s, c)
			}
		}
	}
	// Rejects non-submanifold configs.
	if _, err := SubmanifoldConv2D(in, randFilter(r, 2, 2, 3, 2, 1)); err == nil {
		t.Fatal("stride 2 accepted")
	}
	if _, err := SubmanifoldConv2D(in, randFilter(r, 2, 2, 4, 1, 2)); err == nil {
		t.Fatal("even kernel accepted")
	}
}

func TestDeconv(t *testing.T) {
	r := rand.New(rand.NewSource(19))
	in := NewTensor(2, 5, 5)
	in.FillRandom(r)
	f := randFilter(r, 3, 2, 4, 2, 1)
	f.Deconv = true
	out, err := Conv2D(in, f)
	if err != nil {
		t.Fatal(err)
	}
	oh, ow := f.OutShape(5, 5)
	if out.H != oh || out.W != ow || oh != 10 || ow != 10 {
		t.Fatalf("deconv shape %dx%d want %dx%d", out.H, out.W, oh, ow)
	}
	// Deconv of a delta reproduces (part of) the kernel.
	delta := NewTensor(1, 3, 3)
	delta.Set(0, 1, 1, 1)
	g := NewFilter(1, 1, 3, 1, 1)
	for i := range g.Weights {
		g.Weights[i] = float32(i)
	}
	g.Deconv = true
	dout, err := Conv2D(delta, g)
	if err != nil {
		t.Fatal(err)
	}
	if dout.At(0, 1, 1) != g.W(0, 0, 1, 1) {
		t.Fatalf("deconv delta center %f want %f", dout.At(0, 1, 1), g.W(0, 0, 1, 1))
	}
}

func TestPooling(t *testing.T) {
	in := NewTensor(1, 4, 4)
	for i := range in.Data {
		in.Data[i] = float32(i)
	}
	mx, err := MaxPool2D(in, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if mx.At(0, 0, 0) != 5 || mx.At(0, 1, 1) != 15 {
		t.Fatalf("maxpool wrong: %v", mx.Data)
	}
	av, err := AvgPool2D(in, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if av.At(0, 0, 0) != 2.5 {
		t.Fatalf("avgpool wrong: %v", av.Data)
	}
	if _, err := MaxPool2D(in, 0, 1); err == nil {
		t.Fatal("bad pool accepted")
	}
}

func TestMACCounts(t *testing.T) {
	f := NewFilter(8, 2, 3, 1, 1)
	// 32x32 input, same-size output: 8*32*32*2*3*3
	if got, want := f.MACs(32, 32), int64(8*32*32*2*3*3); got != want {
		t.Fatalf("dense MACs=%d want %d", got, want)
	}
	if got, want := SparseConvMACs(100, f), int64(100*2*8*3*3); got != want {
		t.Fatalf("sparse MACs=%d want %d", got, want)
	}
}

func TestMergePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on geometry mismatch")
		}
	}()
	MergeAdd(NewFrame(2, 2, 0, 1), NewFrame(3, 3, 0, 1))
}
