package sparse

import (
	"fmt"
	"sort"
)

// CSR is a compressed-sparse-row matrix of float32 values.
type CSR struct {
	Rows, Cols int
	RowPtr     []int32
	ColIdx     []int32
	Vals       []float32
}

// COOEntry is one (row, col, value) triple used to build CSR matrices.
type COOEntry struct {
	Row, Col int32
	Val      float32
}

// NewCSR builds a CSR matrix from unordered COO entries; duplicate
// coordinates are summed and explicit zeros dropped.
func NewCSR(rows, cols int, entries []COOEntry) (*CSR, error) {
	for _, e := range entries {
		if e.Row < 0 || int(e.Row) >= rows || e.Col < 0 || int(e.Col) >= cols {
			return nil, fmt.Errorf("sparse: COO entry (%d,%d) outside %dx%d", e.Row, e.Col, rows, cols)
		}
	}
	sorted := append([]COOEntry(nil), entries...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Row != sorted[j].Row {
			return sorted[i].Row < sorted[j].Row
		}
		return sorted[i].Col < sorted[j].Col
	})
	m := &CSR{Rows: rows, Cols: cols, RowPtr: make([]int32, rows+1)}
	for i := 0; i < len(sorted); {
		j := i
		var sum float32
		for j < len(sorted) && sorted[j].Row == sorted[i].Row && sorted[j].Col == sorted[i].Col {
			sum += sorted[j].Val
			j++
		}
		if sum != 0 {
			m.ColIdx = append(m.ColIdx, sorted[i].Col)
			m.Vals = append(m.Vals, sum)
			m.RowPtr[sorted[i].Row+1]++
		}
		i = j
	}
	for r := 0; r < rows; r++ {
		m.RowPtr[r+1] += m.RowPtr[r]
	}
	return m, nil
}

// NNZ returns the number of stored nonzeros.
func (m *CSR) NNZ() int { return len(m.Vals) }

// Reset re-initializes the matrix to an empty rows x cols shape,
// keeping slice capacity — the pooled-construction hook used by
// mem.CSRPool. RowPtr is resized to rows+1 and zeroed.
func (m *CSR) Reset(rows, cols int) {
	m.Rows, m.Cols = rows, cols
	if cap(m.RowPtr) < rows+1 {
		m.RowPtr = make([]int32, rows+1)
	} else {
		m.RowPtr = m.RowPtr[:rows+1]
		for i := range m.RowPtr {
			m.RowPtr[i] = 0
		}
	}
	m.ColIdx = m.ColIdx[:0]
	m.Vals = m.Vals[:0]
}

// At returns element (i, j) with a binary search within the row.
func (m *CSR) At(i, j int) float32 {
	lo, hi := m.RowPtr[i], m.RowPtr[i+1]
	row := m.ColIdx[lo:hi]
	k := sort.Search(len(row), func(k int) bool { return row[k] >= int32(j) })
	if k < len(row) && row[k] == int32(j) {
		return m.Vals[int(lo)+k]
	}
	return 0
}

// SpMV computes y = m * x for a dense vector x.
func (m *CSR) SpMV(x []float32) ([]float32, error) {
	if len(x) != m.Cols {
		return nil, fmt.Errorf("sparse: SpMV vector length %d != cols %d", len(x), m.Cols)
	}
	y := make([]float32, m.Rows)
	for i := 0; i < m.Rows; i++ {
		var sum float32
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			sum += m.Vals[k] * x[m.ColIdx[k]]
		}
		y[i] = sum
	}
	return y, nil
}

// SpMM computes m * d for a dense matrix d.
func (m *CSR) SpMM(d *Mat) (*Mat, error) {
	out := NewMat(m.Rows, d.Cols)
	if err := m.SpMMInto(out, d); err != nil {
		return nil, err
	}
	return out, nil
}

// SpMMInto computes m * d into a preallocated out (m.Rows x d.Cols),
// overwriting its contents. The accumulation order is identical to
// SpMM, so results are bit-equal.
func (m *CSR) SpMMInto(out *Mat, d *Mat) error {
	if d.Rows != m.Cols {
		return fmt.Errorf("sparse: SpMM shape mismatch %dx%d x %dx%d", m.Rows, m.Cols, d.Rows, d.Cols)
	}
	if out.Rows != m.Rows || out.Cols != d.Cols {
		return fmt.Errorf("sparse: SpMM output %dx%d, want %dx%d", out.Rows, out.Cols, m.Rows, d.Cols)
	}
	for i := range out.Data {
		out.Data[i] = 0
	}
	for i := 0; i < m.Rows; i++ {
		orow := out.Data[i*out.Cols : (i+1)*out.Cols]
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			v := m.Vals[k]
			drow := d.Data[int(m.ColIdx[k])*d.Cols : (int(m.ColIdx[k])+1)*d.Cols]
			for j, dv := range drow {
				orow[j] += v * dv
			}
		}
	}
	return nil
}

// SpMVInto computes y = m * x into a preallocated y of length m.Rows.
func (m *CSR) SpMVInto(y, x []float32) error {
	if len(x) != m.Cols {
		return fmt.Errorf("sparse: SpMV vector length %d != cols %d", len(x), m.Cols)
	}
	if len(y) != m.Rows {
		return fmt.Errorf("sparse: SpMV output length %d != rows %d", len(y), m.Rows)
	}
	for i := 0; i < m.Rows; i++ {
		var sum float32
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			sum += m.Vals[k] * x[m.ColIdx[k]]
		}
		y[i] = sum
	}
	return nil
}

// Dense expands the CSR matrix to a dense Mat.
func (m *CSR) Dense() *Mat {
	out := NewMat(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			out.Set(i, int(m.ColIdx[k]), m.Vals[k])
		}
	}
	return out
}

// Transpose returns the CSR transpose (CSC reinterpretation done
// eagerly).
func (m *CSR) Transpose() *CSR {
	entries := make([]COOEntry, 0, m.NNZ())
	for i := 0; i < m.Rows; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			entries = append(entries, COOEntry{Row: m.ColIdx[k], Col: int32(i), Val: m.Vals[k]})
		}
	}
	t, err := NewCSR(m.Cols, m.Rows, entries)
	if err != nil {
		panic(err) // entries are in-bounds by construction
	}
	return t
}
