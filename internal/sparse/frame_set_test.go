package sparse

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// oldSetFrame is the reference implementation of Frame.Set before the
// deferred-sort change: a sorted insert that keeps the coordinate
// slices ordered after every call, overwriting duplicates in place.
type oldSetFrame struct {
	h, w     int
	ys, xs   []int32
	pos, neg []float32
}

func (f *oldSetFrame) set(y, x int32, pos, neg float32) {
	k := int64(y)*int64(f.w) + int64(x)
	i := sort.Search(len(f.ys), func(i int) bool {
		return int64(f.ys[i])*int64(f.w)+int64(f.xs[i]) >= k
	})
	if i < len(f.ys) && f.ys[i] == y && f.xs[i] == x {
		f.pos[i], f.neg[i] = pos, neg
		return
	}
	f.ys = append(f.ys, 0)
	f.xs = append(f.xs, 0)
	f.pos = append(f.pos, 0)
	f.neg = append(f.neg, 0)
	copy(f.ys[i+1:], f.ys[i:])
	copy(f.xs[i+1:], f.xs[i:])
	copy(f.pos[i+1:], f.pos[i:])
	copy(f.neg[i+1:], f.neg[i:])
	f.ys[i], f.xs[i], f.pos[i], f.neg[i] = y, x, pos, neg
}

// TestFrameSetMatchesSortedInsert drives random Set sequences (with a
// heavy duplicate rate) through both implementations and requires the
// observable frame state — ordering, values, Validate — to match.
func TestFrameSetMatchesSortedInsert(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 200; trial++ {
		h := 1 + rng.Intn(6)
		w := 1 + rng.Intn(6)
		f := NewFrame(h, w, 0, 1000)
		ref := &oldSetFrame{h: h, w: w}
		nOps := rng.Intn(60)
		for op := 0; op < nOps; op++ {
			y, x := int32(rng.Intn(h)), int32(rng.Intn(w))
			pos, neg := rng.Float32()*5, rng.Float32()*5
			f.Set(y, x, pos, neg)
			ref.set(y, x, pos, neg)

			// Interleave reads sometimes: reads must observe the
			// compacted state mid-sequence too.
			if rng.Intn(4) == 0 {
				gp, gn := f.Get(y, x)
				if gp != pos || gn != neg {
					t.Fatalf("trial %d: Get(%d,%d) = (%v,%v), want (%v,%v)", trial, y, x, gp, gn, pos, neg)
				}
			}
		}
		if err := f.Validate(); err != nil {
			t.Fatalf("trial %d: Validate after %d ops: %v", trial, nOps, err)
		}
		if f.NNZ() != len(ref.ys) {
			t.Fatalf("trial %d: NNZ = %d, want %d", trial, f.NNZ(), len(ref.ys))
		}
		if len(ref.ys) > 0 {
			if !reflect.DeepEqual(f.Ys, ref.ys) || !reflect.DeepEqual(f.Xs, ref.xs) ||
				!reflect.DeepEqual(f.Pos, ref.pos) || !reflect.DeepEqual(f.Neg, ref.neg) {
				t.Fatalf("trial %d: frame state diverged from sorted-insert reference\n got ys=%v xs=%v pos=%v neg=%v\nwant ys=%v xs=%v pos=%v neg=%v",
					trial, f.Ys, f.Xs, f.Pos, f.Neg, ref.ys, ref.xs, ref.pos, ref.neg)
			}
		}
	}
}

// TestFrameSetLastWriteWins pins the duplicate-coordinate semantics the
// deferred sort must preserve: the most recent Set for a coordinate is
// the value observed, even before any read forces compaction.
func TestFrameSetLastWriteWins(t *testing.T) {
	f := NewFrame(4, 4, 0, 10)
	f.Set(2, 2, 1, 1)
	f.Set(0, 1, 2, 2) // out of order: goes to the unsorted tail
	f.Set(2, 2, 3, 4) // duplicate of a sorted entry, after tail started
	f.Set(0, 1, 5, 6) // duplicate of a tail entry
	if p, n := f.Get(2, 2); p != 3 || n != 4 {
		t.Fatalf("Get(2,2) = (%v,%v), want (3,4)", p, n)
	}
	if p, n := f.Get(0, 1); p != 5 || n != 6 {
		t.Fatalf("Get(0,1) = (%v,%v), want (5,6)", p, n)
	}
	if f.NNZ() != 2 {
		t.Fatalf("NNZ = %d, want 2", f.NNZ())
	}
	if err := f.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

// TestValidateStillRejectsUnsortedWireData guards the invariant the
// codec fuzzers rely on: frames assembled by direct slice construction
// (not via Set) must still fail Validate when out of order — the
// deferred-sort machinery must not silently repair foreign data.
func TestValidateStillRejectsUnsortedWireData(t *testing.T) {
	f := &Frame{H: 4, W: 4, T0: 0, T1: 1,
		Ys:  []int32{2, 0},
		Xs:  []int32{0, 0},
		Pos: []float32{1, 1},
		Neg: []float32{0, 0},
	}
	if err := f.Validate(); err == nil {
		t.Fatalf("Validate accepted out-of-order direct-constructed frame")
	}
}

// TestFrameSetInOrderAppendIsZeroAllocAtCapacity verifies the fast
// path: in-order Sets into a frame with spare capacity do not allocate.
func TestFrameSetInOrderAppendIsZeroAllocAtCapacity(t *testing.T) {
	f := NewFrame(64, 64, 0, 1)
	for y := int32(0); y < 64; y++ {
		f.Set(y, 0, 1, 1)
	}
	f.Reset(64, 64, 0, 1)
	n := testing.AllocsPerRun(100, func() {
		f.Reset(64, 64, 0, 1)
		for y := int32(0); y < 64; y++ {
			f.Set(y, 0, 1, 1)
		}
	})
	if n != 0 {
		t.Fatalf("in-order Set at capacity allocates %.1f allocs/op, want 0", n)
	}
}
