package sparse

import (
	"math/rand"
	"testing"
)

// benchInput builds a 64x64 input tensor with ~density fraction of
// active sites, mirroring a mid-stream E2SF frame.
func benchInput(c, h, w int, density float64) *Tensor {
	rng := rand.New(rand.NewSource(42))
	in := NewTensor(c, h, w)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if rng.Float64() < density {
				for ch := 0; ch < c; ch++ {
					in.Set(ch, y, x, rng.Float32())
				}
			}
		}
	}
	return in
}

func benchFilter(outC, inC, k int) *Filter {
	rng := rand.New(rand.NewSource(7))
	f := NewFilter(outC, inC, k, 1, k/2)
	for i := range f.Weights {
		f.Weights[i] = rng.Float32() - 0.5
	}
	return f
}

func BenchmarkConv2D(b *testing.B) {
	in := benchInput(2, 64, 64, 0.1)
	f := benchFilter(8, 2, 3)
	b.Run("alloc", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Conv2D(in, f); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("into", func(b *testing.B) {
		oh, ow := f.OutShape(in.H, in.W)
		out := NewTensor(f.OutC, oh, ow)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := Conv2DInto(out, in, f); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkSparseConv2D(b *testing.B) {
	in := benchInput(2, 64, 64, 0.05)
	f := benchFilter(8, 2, 3)
	b.Run("alloc", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := SparseConv2D(in, f); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("into", func(b *testing.B) {
		oh, ow := f.OutShape(in.H, in.W)
		out := NewTensor(f.OutC, oh, ow)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := SparseConv2DInto(out, in, f); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkSubmanifoldConv2D(b *testing.B) {
	in := benchInput(2, 64, 64, 0.05)
	f := benchFilter(8, 2, 3)
	b.Run("alloc", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := SubmanifoldConv2D(in, f); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("into", func(b *testing.B) {
		out := NewTensor(f.OutC, in.H, in.W)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := SubmanifoldConv2DInto(out, in, f); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkSpMM(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	const rows, cols, dcols = 256, 256, 32
	entries := make([]COOEntry, 0, rows*cols/20)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if rng.Float64() < 0.05 {
				entries = append(entries, COOEntry{Row: int32(r), Col: int32(c), Val: rng.Float32()})
			}
		}
	}
	m, err := NewCSR(rows, cols, entries)
	if err != nil {
		b.Fatal(err)
	}
	d := NewMat(cols, dcols)
	for i := range d.Data {
		d.Data[i] = rng.Float32()
	}
	b.Run("alloc", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := m.SpMM(d); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("into", func(b *testing.B) {
		out := NewMat(rows, dcols)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := m.SpMMInto(out, d); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkFrameSet(b *testing.B) {
	const h, w = 128, 128
	rng := rand.New(rand.NewSource(3))
	ys := make([]int32, 2048)
	xs := make([]int32, 2048)
	for i := range ys {
		ys[i] = int32(rng.Intn(h))
		xs[i] = int32(rng.Intn(w))
	}
	f := NewFrame(h, w, 0, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Reset(h, w, 0, 1)
		for j := range ys {
			f.Set(ys[j], xs[j], 1, 0)
		}
		f.NNZ() // force compaction inside the measured region
	}
}

func BenchmarkMergeAdd(b *testing.B) {
	frames := make([]*Frame, 4)
	rng := rand.New(rand.NewSource(5))
	for i := range frames {
		f := NewFrame(64, 64, int64(i), int64(i+1))
		for n := 0; n < 300; n++ {
			f.Set(int32(rng.Intn(64)), int32(rng.Intn(64)), rng.Float32(), rng.Float32())
		}
		f.NNZ()
		frames[i] = f
	}
	b.Run("alloc", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			MergeAdd(frames...)
		}
	})
	b.Run("into", func(b *testing.B) {
		out := &Frame{}
		MergeAddInto(out, frames...)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			MergeAddInto(out, frames...)
		}
	})
}
