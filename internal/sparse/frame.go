package sparse

import (
	"fmt"
	"sort"
)

// Frame is a two-channel sparse event frame in coordinate (COO-like)
// form, exactly as produced by the paper's Event2Sparse Frame
// converter: row indices, column indices, and the accumulated positive
// and negative polarity counts stored as separate channels. Only
// pixels with at least one event appear.
//
// Entries are kept sorted by (Y, X) so frames can be merged with a
// linear pass.
type Frame struct {
	H, W int
	Ys   []int32
	Xs   []int32
	Pos  []float32 // accumulated positive-polarity events per pixel
	Neg  []float32 // accumulated negative-polarity events per pixel

	// T0 and T1 bound the time interval (microseconds) whose events
	// were accumulated into the frame. DSFA uses T0 as the frame's
	// generation time when checking the merge-delay threshold.
	T0, T1 int64

	// unsorted counts entries Set appended past the sorted prefix;
	// ensureSorted compacts them lazily before any order-dependent
	// read. Only Set raises it, so frames assembled by direct slice
	// construction (the codec, the fused E2SF kernel) are still
	// strictly validated — Validate must keep rejecting unsorted
	// wire data.
	unsorted int
}

// NewFrame returns an empty sparse frame with the given geometry and
// time bounds.
func NewFrame(h, w int, t0, t1 int64) *Frame {
	return &Frame{H: h, W: w, T0: t0, T1: t1}
}

// Reset re-initializes the frame to the given geometry and time
// bounds with zero entries, keeping the channel slices' capacity —
// the pooled-construction twin of NewFrame.
func (f *Frame) Reset(h, w int, t0, t1 int64) {
	f.H, f.W, f.T0, f.T1 = h, w, t0, t1
	f.Ys = f.Ys[:0]
	f.Xs = f.Xs[:0]
	f.Pos = f.Pos[:0]
	f.Neg = f.Neg[:0]
	f.unsorted = 0
}

// NNZ returns the number of stored (active) pixels.
func (f *Frame) NNZ() int { f.ensureSorted(); return len(f.Ys) }

// Density returns NNZ / (H*W): the fraction of active pixels, i.e. the
// spatial density the paper plots in Figures 1 and 3.
func (f *Frame) Density() float64 {
	if f.H*f.W == 0 {
		return 0
	}
	return float64(f.NNZ()) / float64(f.H*f.W)
}

// EventCount returns the total number of events accumulated into the
// frame (sum of positive and negative counts).
func (f *Frame) EventCount() float64 {
	f.ensureSorted()
	var s float64
	for i := range f.Pos {
		s += float64(f.Pos[i]) + float64(f.Neg[i])
	}
	return s
}

// Validate checks the structural invariants: coordinates in bounds,
// entries sorted by (Y, X) with no duplicates, and no all-zero entries.
func (f *Frame) Validate() error {
	f.ensureSorted()
	if len(f.Ys) != len(f.Xs) || len(f.Ys) != len(f.Pos) || len(f.Ys) != len(f.Neg) {
		return fmt.Errorf("sparse: frame channel lengths differ: %d %d %d %d",
			len(f.Ys), len(f.Xs), len(f.Pos), len(f.Neg))
	}
	for i := range f.Ys {
		if f.Ys[i] < 0 || int(f.Ys[i]) >= f.H || f.Xs[i] < 0 || int(f.Xs[i]) >= f.W {
			return fmt.Errorf("sparse: frame entry %d at (%d,%d) outside %dx%d",
				i, f.Ys[i], f.Xs[i], f.H, f.W)
		}
		if f.Pos[i] == 0 && f.Neg[i] == 0 {
			return fmt.Errorf("sparse: frame entry %d is all-zero", i)
		}
		if i > 0 {
			prev, cur := f.key(i-1), f.key(i)
			if cur <= prev {
				return fmt.Errorf("sparse: frame entries not strictly sorted at %d", i)
			}
		}
	}
	return nil
}

func (f *Frame) key(i int) int64 { return int64(f.Ys[i])*int64(f.W) + int64(f.Xs[i]) }

// Set inserts or overwrites the entry at (y, x). In-place overwrites
// of already-sorted entries and in-order appends are O(log n) / O(1);
// out-of-order inserts append to an unsorted tail that is compacted
// with one sort on the next order-dependent read, so building a frame
// of n scattered Sets costs O(n log n) total instead of the old
// sorted-insert's O(n^2). Bulk counting construction should still use
// FrameBuilder or the fused E2SF kernel.
func (f *Frame) Set(y, x int32, pos, neg float32) {
	k := int64(y)*int64(f.W) + int64(x)
	if f.unsorted == 0 {
		n := len(f.Ys)
		if n == 0 || f.key(n-1) < k {
			// In-order append keeps the frame sorted for free.
			f.Ys = append(f.Ys, y)
			f.Xs = append(f.Xs, x)
			f.Pos = append(f.Pos, pos)
			f.Neg = append(f.Neg, neg)
			return
		}
		i := sort.Search(n, func(i int) bool { return f.key(i) >= k })
		if i < n && f.key(i) == k {
			f.Pos[i], f.Neg[i] = pos, neg
			return
		}
	}
	// Out-of-order (or already dirty): append to the unsorted tail.
	// Duplicates are resolved last-wins at compaction, matching the
	// old overwrite semantics.
	f.Ys = append(f.Ys, y)
	f.Xs = append(f.Xs, x)
	f.Pos = append(f.Pos, pos)
	f.Neg = append(f.Neg, neg)
	f.unsorted++
}

// ensureSorted compacts the unsorted tail Set may have left: one
// stable sort over all entries, then a sweep keeping the last write
// per duplicate key. No-op (one integer compare) when clean.
func (f *Frame) ensureSorted() {
	if f.unsorted == 0 {
		return
	}
	n := len(f.Ys)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	sort.SliceStable(perm, func(a, b int) bool { return f.key(perm[a]) < f.key(perm[b]) })
	ys := make([]int32, 0, n)
	xs := make([]int32, 0, n)
	pos := make([]float32, 0, n)
	neg := make([]float32, 0, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && f.key(perm[j+1]) == f.key(perm[i]) {
			j++
		}
		// Stable sort keeps duplicates in insertion order; the last one
		// is the surviving write.
		p := perm[j]
		ys = append(ys, f.Ys[p])
		xs = append(xs, f.Xs[p])
		pos = append(pos, f.Pos[p])
		neg = append(neg, f.Neg[p])
		i = j + 1
	}
	f.Ys, f.Xs, f.Pos, f.Neg = ys, xs, pos, neg
	f.unsorted = 0
}

// Get returns the (pos, neg) accumulation at (y, x), zeroes if absent.
func (f *Frame) Get(y, x int32) (pos, neg float32) {
	f.ensureSorted()
	k := int64(y)*int64(f.W) + int64(x)
	i := sort.Search(len(f.Ys), func(i int) bool { return f.key(i) >= k })
	if i < len(f.Ys) && f.key(i) == k {
		return f.Pos[i], f.Neg[i]
	}
	return 0, 0
}

// Clone returns a deep copy of the frame.
func (f *Frame) Clone() *Frame {
	f.ensureSorted()
	out := &Frame{H: f.H, W: f.W, T0: f.T0, T1: f.T1}
	out.Ys = append([]int32(nil), f.Ys...)
	out.Xs = append([]int32(nil), f.Xs...)
	out.Pos = append([]float32(nil), f.Pos...)
	out.Neg = append([]float32(nil), f.Neg...)
	return out
}

// Dense expands the frame to a dense 2 x H x W tensor (channel 0 =
// positive, channel 1 = negative) — the "event frame" representation
// the baselines feed to dense kernels.
func (f *Frame) Dense() *Tensor {
	t := NewTensor(2, f.H, f.W)
	f.DenseInto(t)
	return t
}

// DenseInto expands the frame into a caller-supplied (possibly
// pooled) 2 x H x W tensor, zeroing it first. Panics on shape
// mismatch — pooled tensors are fetched by shape, so a mismatch is a
// wiring bug, not data.
func (f *Frame) DenseInto(t *Tensor) {
	if t.C != 2 || t.H != f.H || t.W != f.W {
		panic(fmt.Sprintf("sparse: DenseInto tensor %dx%dx%d != frame 2x%dx%d", t.C, t.H, t.W, f.H, f.W))
	}
	f.ensureSorted()
	t.Zero()
	for i := range f.Ys {
		t.Set(0, int(f.Ys[i]), int(f.Xs[i]), f.Pos[i])
		t.Set(1, int(f.Ys[i]), int(f.Xs[i]), f.Neg[i])
	}
}

// FromDense converts a dense 2 x H x W tensor into a sparse frame,
// keeping pixels where either channel is nonzero. This models the
// encode step whose overhead E2SF avoids; its cost is proportional to
// H*W (a full scan), which the perf model charges to the baseline.
func FromDense(t *Tensor, t0, t1 int64) (*Frame, error) {
	if t.C != 2 {
		return nil, fmt.Errorf("sparse: FromDense needs 2 channels, got %d", t.C)
	}
	f := NewFrame(t.H, t.W, t0, t1)
	for y := 0; y < t.H; y++ {
		for x := 0; x < t.W; x++ {
			p, n := t.At(0, y, x), t.At(1, y, x)
			if p != 0 || n != 0 {
				f.Ys = append(f.Ys, int32(y))
				f.Xs = append(f.Xs, int32(x))
				f.Pos = append(f.Pos, p)
				f.Neg = append(f.Neg, n)
			}
		}
	}
	return f, nil
}

// MergeAdd returns a new frame whose per-pixel accumulations are the
// elementwise sums of the inputs — the DSFA cAdd combine mode. Time
// bounds become the union. Panics on geometry mismatch.
func MergeAdd(frames ...*Frame) *Frame {
	out := &Frame{}
	mergeScaledInto(out, frames, 1)
	return out
}

// MergeAverage returns the elementwise mean of the inputs — the DSFA
// cAverage combine mode.
func MergeAverage(frames ...*Frame) *Frame {
	if len(frames) == 0 {
		panic("sparse: MergeAverage of no frames")
	}
	out := &Frame{}
	mergeScaledInto(out, frames, 1/float32(len(frames)))
	return out
}

// MergeAddInto writes the cAdd combination of frames into out
// (typically a pooled frame), keeping out's slice capacity. The
// summation order is identical to MergeAdd's, so results are
// bit-identical — scenario replay depends on it.
func MergeAddInto(out *Frame, frames ...*Frame) {
	mergeScaledInto(out, frames, 1)
}

// MergeAverageInto is MergeAverage writing into a pooled frame.
func MergeAverageInto(out *Frame, frames ...*Frame) {
	if len(frames) == 0 {
		panic("sparse: MergeAverage of no frames")
	}
	mergeScaledInto(out, frames, 1/float32(len(frames)))
}

func mergeScaledInto(out *Frame, frames []*Frame, scale float32) {
	if len(frames) == 0 {
		panic("sparse: merge of no frames")
	}
	for _, f := range frames {
		if f == out {
			panic("sparse: merge output aliases an input")
		}
		f.ensureSorted()
	}
	h, w := frames[0].H, frames[0].W
	t0, t1 := frames[0].T0, frames[0].T1
	for _, f := range frames[1:] {
		if f.H != h || f.W != w {
			panic(fmt.Sprintf("sparse: merge geometry mismatch %dx%d vs %dx%d", f.H, f.W, h, w))
		}
		if f.T0 < t0 {
			t0 = f.T0
		}
		if f.T1 > t1 {
			t1 = f.T1
		}
	}
	out.Reset(h, w, t0, t1)
	// k-way linear merge over sorted entries. The cursor array lives
	// on the stack for the bucket sizes DSFA actually forms; bigger
	// merges spill to one allocation.
	var idxArr [32]int
	var idx []int
	if len(frames) <= len(idxArr) {
		idx = idxArr[:len(frames)]
		for i := range idx {
			idx[i] = 0
		}
	} else {
		idx = make([]int, len(frames))
	}
	for {
		best := int64(-1)
		for fi, f := range frames {
			if idx[fi] < len(f.Ys) {
				if k := f.key(idx[fi]); best == -1 || k < best {
					best = k
				}
			}
		}
		if best == -1 {
			break
		}
		var pos, neg float32
		for fi, f := range frames {
			if idx[fi] < len(f.Ys) && f.key(idx[fi]) == best {
				pos += f.Pos[idx[fi]]
				neg += f.Neg[idx[fi]]
				idx[fi]++
			}
		}
		out.Ys = append(out.Ys, int32(best/int64(w)))
		out.Xs = append(out.Xs, int32(best%int64(w)))
		out.Pos = append(out.Pos, pos*scale)
		out.Neg = append(out.Neg, neg*scale)
	}
}

// DensityChange returns |d(a) - d(b)| / max(d(a), eps): the relative
// spatial-density change DSFA compares against its MdTh threshold.
func DensityChange(a, b *Frame) float64 {
	da, db := a.Density(), b.Density()
	if da == 0 && db == 0 {
		return 0
	}
	ref := da
	if ref == 0 {
		ref = 1e-9
	}
	d := (db - da) / ref
	if d < 0 {
		d = -d
	}
	return d
}

// FrameBuilder accumulates per-pixel polarity counts using a map and
// emits a sorted Frame. It is the construction path used by E2SF.
type FrameBuilder struct {
	h, w   int
	t0, t1 int64
	acc    map[int64][2]float32
}

// NewFrameBuilder returns a builder for an h x w frame spanning
// [t0, t1).
func NewFrameBuilder(h, w int, t0, t1 int64) *FrameBuilder {
	return &FrameBuilder{h: h, w: w, t0: t0, t1: t1, acc: make(map[int64][2]float32)}
}

// AddEvent accumulates one event of the given polarity sign (true =
// positive) at (y, x).
func (b *FrameBuilder) AddEvent(y, x int32, positive bool) {
	k := int64(y)*int64(b.w) + int64(x)
	v := b.acc[k]
	if positive {
		v[0]++
	} else {
		v[1]++
	}
	b.acc[k] = v
}

// Count returns the number of distinct active pixels so far.
func (b *FrameBuilder) Count() int { return len(b.acc) }

// Build emits the sorted sparse frame and resets the builder. Empty
// builders yield frames with nil channel slices, matching NewFrame and
// the codec's decoding of zero-entry frames.
func (b *FrameBuilder) Build() *Frame {
	if len(b.acc) == 0 {
		return NewFrame(b.h, b.w, b.t0, b.t1)
	}
	keys := make([]int64, 0, len(b.acc))
	for k := range b.acc {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	f := NewFrame(b.h, b.w, b.t0, b.t1)
	f.Ys = make([]int32, len(keys))
	f.Xs = make([]int32, len(keys))
	f.Pos = make([]float32, len(keys))
	f.Neg = make([]float32, len(keys))
	for i, k := range keys {
		v := b.acc[k]
		f.Ys[i] = int32(k / int64(b.w))
		f.Xs[i] = int32(k % int64(b.w))
		f.Pos[i] = v[0]
		f.Neg[i] = v[1]
	}
	b.acc = make(map[int64][2]float32)
	return f
}
