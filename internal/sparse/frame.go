package sparse

import (
	"fmt"
	"sort"
)

// Frame is a two-channel sparse event frame in coordinate (COO-like)
// form, exactly as produced by the paper's Event2Sparse Frame
// converter: row indices, column indices, and the accumulated positive
// and negative polarity counts stored as separate channels. Only
// pixels with at least one event appear.
//
// Entries are kept sorted by (Y, X) so frames can be merged with a
// linear pass.
type Frame struct {
	H, W int
	Ys   []int32
	Xs   []int32
	Pos  []float32 // accumulated positive-polarity events per pixel
	Neg  []float32 // accumulated negative-polarity events per pixel

	// T0 and T1 bound the time interval (microseconds) whose events
	// were accumulated into the frame. DSFA uses T0 as the frame's
	// generation time when checking the merge-delay threshold.
	T0, T1 int64
}

// NewFrame returns an empty sparse frame with the given geometry and
// time bounds.
func NewFrame(h, w int, t0, t1 int64) *Frame {
	return &Frame{H: h, W: w, T0: t0, T1: t1}
}

// NNZ returns the number of stored (active) pixels.
func (f *Frame) NNZ() int { return len(f.Ys) }

// Density returns NNZ / (H*W): the fraction of active pixels, i.e. the
// spatial density the paper plots in Figures 1 and 3.
func (f *Frame) Density() float64 {
	if f.H*f.W == 0 {
		return 0
	}
	return float64(f.NNZ()) / float64(f.H*f.W)
}

// EventCount returns the total number of events accumulated into the
// frame (sum of positive and negative counts).
func (f *Frame) EventCount() float64 {
	var s float64
	for i := range f.Pos {
		s += float64(f.Pos[i]) + float64(f.Neg[i])
	}
	return s
}

// Validate checks the structural invariants: coordinates in bounds,
// entries sorted by (Y, X) with no duplicates, and no all-zero entries.
func (f *Frame) Validate() error {
	if len(f.Ys) != len(f.Xs) || len(f.Ys) != len(f.Pos) || len(f.Ys) != len(f.Neg) {
		return fmt.Errorf("sparse: frame channel lengths differ: %d %d %d %d",
			len(f.Ys), len(f.Xs), len(f.Pos), len(f.Neg))
	}
	for i := range f.Ys {
		if f.Ys[i] < 0 || int(f.Ys[i]) >= f.H || f.Xs[i] < 0 || int(f.Xs[i]) >= f.W {
			return fmt.Errorf("sparse: frame entry %d at (%d,%d) outside %dx%d",
				i, f.Ys[i], f.Xs[i], f.H, f.W)
		}
		if f.Pos[i] == 0 && f.Neg[i] == 0 {
			return fmt.Errorf("sparse: frame entry %d is all-zero", i)
		}
		if i > 0 {
			prev, cur := f.key(i-1), f.key(i)
			if cur <= prev {
				return fmt.Errorf("sparse: frame entries not strictly sorted at %d", i)
			}
		}
	}
	return nil
}

func (f *Frame) key(i int) int64 { return int64(f.Ys[i])*int64(f.W) + int64(f.Xs[i]) }

// Set inserts or overwrites the entry at (y, x). It is O(n) in the
// worst case and intended for construction paths that are not already
// sorted; bulk construction should use FrameBuilder.
func (f *Frame) Set(y, x int32, pos, neg float32) {
	k := int64(y)*int64(f.W) + int64(x)
	i := sort.Search(len(f.Ys), func(i int) bool { return f.key(i) >= k })
	if i < len(f.Ys) && f.key(i) == k {
		f.Pos[i], f.Neg[i] = pos, neg
		return
	}
	f.Ys = append(f.Ys, 0)
	f.Xs = append(f.Xs, 0)
	f.Pos = append(f.Pos, 0)
	f.Neg = append(f.Neg, 0)
	copy(f.Ys[i+1:], f.Ys[i:])
	copy(f.Xs[i+1:], f.Xs[i:])
	copy(f.Pos[i+1:], f.Pos[i:])
	copy(f.Neg[i+1:], f.Neg[i:])
	f.Ys[i], f.Xs[i], f.Pos[i], f.Neg[i] = y, x, pos, neg
}

// Get returns the (pos, neg) accumulation at (y, x), zeroes if absent.
func (f *Frame) Get(y, x int32) (pos, neg float32) {
	k := int64(y)*int64(f.W) + int64(x)
	i := sort.Search(len(f.Ys), func(i int) bool { return f.key(i) >= k })
	if i < len(f.Ys) && f.key(i) == k {
		return f.Pos[i], f.Neg[i]
	}
	return 0, 0
}

// Clone returns a deep copy of the frame.
func (f *Frame) Clone() *Frame {
	out := &Frame{H: f.H, W: f.W, T0: f.T0, T1: f.T1}
	out.Ys = append([]int32(nil), f.Ys...)
	out.Xs = append([]int32(nil), f.Xs...)
	out.Pos = append([]float32(nil), f.Pos...)
	out.Neg = append([]float32(nil), f.Neg...)
	return out
}

// Dense expands the frame to a dense 2 x H x W tensor (channel 0 =
// positive, channel 1 = negative) — the "event frame" representation
// the baselines feed to dense kernels.
func (f *Frame) Dense() *Tensor {
	t := NewTensor(2, f.H, f.W)
	for i := range f.Ys {
		t.Set(0, int(f.Ys[i]), int(f.Xs[i]), f.Pos[i])
		t.Set(1, int(f.Ys[i]), int(f.Xs[i]), f.Neg[i])
	}
	return t
}

// FromDense converts a dense 2 x H x W tensor into a sparse frame,
// keeping pixels where either channel is nonzero. This models the
// encode step whose overhead E2SF avoids; its cost is proportional to
// H*W (a full scan), which the perf model charges to the baseline.
func FromDense(t *Tensor, t0, t1 int64) (*Frame, error) {
	if t.C != 2 {
		return nil, fmt.Errorf("sparse: FromDense needs 2 channels, got %d", t.C)
	}
	f := NewFrame(t.H, t.W, t0, t1)
	for y := 0; y < t.H; y++ {
		for x := 0; x < t.W; x++ {
			p, n := t.At(0, y, x), t.At(1, y, x)
			if p != 0 || n != 0 {
				f.Ys = append(f.Ys, int32(y))
				f.Xs = append(f.Xs, int32(x))
				f.Pos = append(f.Pos, p)
				f.Neg = append(f.Neg, n)
			}
		}
	}
	return f, nil
}

// MergeAdd returns a new frame whose per-pixel accumulations are the
// elementwise sums of the inputs — the DSFA cAdd combine mode. Time
// bounds become the union. Panics on geometry mismatch.
func MergeAdd(frames ...*Frame) *Frame {
	return mergeScaled(frames, 1)
}

// MergeAverage returns the elementwise mean of the inputs — the DSFA
// cAverage combine mode.
func MergeAverage(frames ...*Frame) *Frame {
	if len(frames) == 0 {
		panic("sparse: MergeAverage of no frames")
	}
	return mergeScaled(frames, 1/float32(len(frames)))
}

func mergeScaled(frames []*Frame, scale float32) *Frame {
	if len(frames) == 0 {
		panic("sparse: merge of no frames")
	}
	h, w := frames[0].H, frames[0].W
	t0, t1 := frames[0].T0, frames[0].T1
	for _, f := range frames[1:] {
		if f.H != h || f.W != w {
			panic(fmt.Sprintf("sparse: merge geometry mismatch %dx%d vs %dx%d", f.H, f.W, h, w))
		}
		if f.T0 < t0 {
			t0 = f.T0
		}
		if f.T1 > t1 {
			t1 = f.T1
		}
	}
	// k-way linear merge over sorted entries.
	out := NewFrame(h, w, t0, t1)
	idx := make([]int, len(frames))
	for {
		best := int64(-1)
		for fi, f := range frames {
			if idx[fi] < f.NNZ() {
				if k := f.key(idx[fi]); best == -1 || k < best {
					best = k
				}
			}
		}
		if best == -1 {
			break
		}
		var pos, neg float32
		for fi, f := range frames {
			if idx[fi] < f.NNZ() && f.key(idx[fi]) == best {
				pos += f.Pos[idx[fi]]
				neg += f.Neg[idx[fi]]
				idx[fi]++
			}
		}
		out.Ys = append(out.Ys, int32(best/int64(w)))
		out.Xs = append(out.Xs, int32(best%int64(w)))
		out.Pos = append(out.Pos, pos*scale)
		out.Neg = append(out.Neg, neg*scale)
	}
	return out
}

// DensityChange returns |d(a) - d(b)| / max(d(a), eps): the relative
// spatial-density change DSFA compares against its MdTh threshold.
func DensityChange(a, b *Frame) float64 {
	da, db := a.Density(), b.Density()
	if da == 0 && db == 0 {
		return 0
	}
	ref := da
	if ref == 0 {
		ref = 1e-9
	}
	d := (db - da) / ref
	if d < 0 {
		d = -d
	}
	return d
}

// FrameBuilder accumulates per-pixel polarity counts using a map and
// emits a sorted Frame. It is the construction path used by E2SF.
type FrameBuilder struct {
	h, w   int
	t0, t1 int64
	acc    map[int64][2]float32
}

// NewFrameBuilder returns a builder for an h x w frame spanning
// [t0, t1).
func NewFrameBuilder(h, w int, t0, t1 int64) *FrameBuilder {
	return &FrameBuilder{h: h, w: w, t0: t0, t1: t1, acc: make(map[int64][2]float32)}
}

// AddEvent accumulates one event of the given polarity sign (true =
// positive) at (y, x).
func (b *FrameBuilder) AddEvent(y, x int32, positive bool) {
	k := int64(y)*int64(b.w) + int64(x)
	v := b.acc[k]
	if positive {
		v[0]++
	} else {
		v[1]++
	}
	b.acc[k] = v
}

// Count returns the number of distinct active pixels so far.
func (b *FrameBuilder) Count() int { return len(b.acc) }

// Build emits the sorted sparse frame and resets the builder. Empty
// builders yield frames with nil channel slices, matching NewFrame and
// the codec's decoding of zero-entry frames.
func (b *FrameBuilder) Build() *Frame {
	if len(b.acc) == 0 {
		return NewFrame(b.h, b.w, b.t0, b.t1)
	}
	keys := make([]int64, 0, len(b.acc))
	for k := range b.acc {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	f := NewFrame(b.h, b.w, b.t0, b.t1)
	f.Ys = make([]int32, len(keys))
	f.Xs = make([]int32, len(keys))
	f.Pos = make([]float32, len(keys))
	f.Neg = make([]float32, len(keys))
	for i, k := range keys {
		v := b.acc[k]
		f.Ys[i] = int32(k / int64(b.w))
		f.Xs[i] = int32(k % int64(b.w))
		f.Pos[i] = v[0]
		f.Neg[i] = v[1]
	}
	b.acc = make(map[int64][2]float32)
	return f
}
