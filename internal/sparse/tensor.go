// Package sparse provides the dense and sparse linear-algebra
// substrate used by Ev-Edge: CHW dense tensors, COO sparse frames, CSR
// matrices, dense convolution (direct and im2col+GEMM), sparse
// gather-scatter convolution and submanifold convolution, plus the
// operation-count accounting that drives the performance model.
//
// Event frames are extremely sparse (0.15%-28.6% active pixels in the
// paper's Fig. 3), so processing them with fixed-size dense kernels
// wastes most of the arithmetic; this package supplies both the dense
// baseline path and the sparse path whose cost is proportional to the
// number of active sites.
package sparse

import (
	"fmt"
	"math"
	"math/rand"
)

// Tensor is a dense C x H x W tensor of float32 values in row-major
// (channel, row, column) order.
type Tensor struct {
	C, H, W int
	Data    []float32
}

// NewTensor allocates a zeroed C x H x W tensor.
func NewTensor(c, h, w int) *Tensor {
	if c <= 0 || h <= 0 || w <= 0 {
		panic(fmt.Sprintf("sparse: invalid tensor shape %dx%dx%d", c, h, w))
	}
	return &Tensor{C: c, H: h, W: w, Data: make([]float32, c*h*w)}
}

// At returns the element at (c, y, x).
func (t *Tensor) At(c, y, x int) float32 { return t.Data[(c*t.H+y)*t.W+x] }

// Set stores v at (c, y, x).
func (t *Tensor) Set(c, y, x int, v float32) { t.Data[(c*t.H+y)*t.W+x] = v }

// Add accumulates v into (c, y, x).
func (t *Tensor) Add(c, y, x int, v float32) { t.Data[(c*t.H+y)*t.W+x] += v }

// Numel returns the number of elements.
func (t *Tensor) Numel() int { return t.C * t.H * t.W }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	out := NewTensor(t.C, t.H, t.W)
	copy(out.Data, t.Data)
	return out
}

// Zero resets all elements to 0.
func (t *Tensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// NNZ counts nonzero elements.
func (t *Tensor) NNZ() int {
	n := 0
	for _, v := range t.Data {
		if v != 0 {
			n++
		}
	}
	return n
}

// Density returns NNZ / Numel.
func (t *Tensor) Density() float64 {
	if t.Numel() == 0 {
		return 0
	}
	return float64(t.NNZ()) / float64(t.Numel())
}

// ActiveSites returns the (y, x) positions where any channel is
// nonzero — the "active site" notion of submanifold sparse convolution.
func (t *Tensor) ActiveSites() []Site {
	var out []Site
	for y := 0; y < t.H; y++ {
	pixel:
		for x := 0; x < t.W; x++ {
			for c := 0; c < t.C; c++ {
				if t.At(c, y, x) != 0 {
					out = append(out, Site{Y: int32(y), X: int32(x)})
					continue pixel
				}
			}
		}
	}
	return out
}

// MaxAbsDiff returns the largest absolute elementwise difference
// between two same-shaped tensors.
func MaxAbsDiff(a, b *Tensor) float64 {
	if a.C != b.C || a.H != b.H || a.W != b.W {
		panic("sparse: shape mismatch in MaxAbsDiff")
	}
	m := 0.0
	for i := range a.Data {
		d := math.Abs(float64(a.Data[i] - b.Data[i]))
		if d > m {
			m = d
		}
	}
	return m
}

// FillRandom fills the tensor with uniform values in [-1, 1) from r.
func (t *Tensor) FillRandom(r *rand.Rand) {
	for i := range t.Data {
		t.Data[i] = r.Float32()*2 - 1
	}
}

// FillRandomSparse zeroes the tensor and then sets approximately
// density * Numel elements to uniform values in [-1, 1).
func (t *Tensor) FillRandomSparse(r *rand.Rand, density float64) {
	t.Zero()
	n := int(density * float64(t.Numel()))
	for i := 0; i < n; i++ {
		t.Data[r.Intn(len(t.Data))] = r.Float32()*2 - 1
	}
}

// Site is an active pixel location.
type Site struct{ Y, X int32 }

// Mat is a dense row-major matrix, the workhorse of the im2col+GEMM
// dense path.
type Mat struct {
	Rows, Cols int
	Data       []float32
}

// NewMat allocates a zeroed rows x cols matrix.
func NewMat(rows, cols int) *Mat {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("sparse: invalid matrix shape %dx%d", rows, cols))
	}
	return &Mat{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// At returns element (i, j).
func (m *Mat) At(i, j int) float32 { return m.Data[i*m.Cols+j] }

// Set stores v at (i, j).
func (m *Mat) Set(i, j int, v float32) { m.Data[i*m.Cols+j] = v }

// MatMul computes a x b with a plain blocked triple loop. Panics on
// shape mismatch.
func MatMul(a, b *Mat) *Mat {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("sparse: matmul shape mismatch %dx%d x %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewMat(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		orow := out.Data[i*out.Cols : (i+1)*out.Cols]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[k*b.Cols : (k+1)*b.Cols]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// ReLU applies max(0, x) in place and returns t.
func (t *Tensor) ReLU() *Tensor {
	for i, v := range t.Data {
		if v < 0 {
			t.Data[i] = 0
		}
	}
	return t
}

// Scale multiplies every element by s in place and returns t.
func (t *Tensor) Scale(s float32) *Tensor {
	for i := range t.Data {
		t.Data[i] *= s
	}
	return t
}

// AddTensor accumulates o into t elementwise. Panics on shape mismatch.
func (t *Tensor) AddTensor(o *Tensor) *Tensor {
	if t.C != o.C || t.H != o.H || t.W != o.W {
		panic("sparse: shape mismatch in AddTensor")
	}
	for i, v := range o.Data {
		t.Data[i] += v
	}
	return t
}
