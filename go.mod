module evedge

go 1.24
