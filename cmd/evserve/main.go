// Command evserve runs the multi-tenant streaming inference server: a
// long-lived HTTP service that accepts AER event streams into
// per-client sessions and multiplexes them onto one shared simulated
// Jetson Xavier AGX through the Ev-Edge pipeline.
//
// Usage:
//
//	evserve [-addr :7733] [-platform xavier|orin] [-workers 4]
//	        [-queue 64] [-drop drop-oldest] [-mapper rr|nmp]
//	        [-parallel 0] [-batch-max 8] [-batch-window 0]
//	        [-adapt] [-adapt-interval 50ms] [-remap-cooldown 250ms]
//	        [-journal]
//
// Execution flows through the shared scheduler (internal/sched):
// per-device run queues coalesce compatible invocations from
// concurrent sessions into micro-batches. -batch-max caps members per
// batch (1 = serialized baseline); -batch-window lets a dispatcher
// hold work open for more compatible arrivals (0 = opportunistic
// coalescing only). Occupancy is exposed in /metrics
// (evserve_sched_batch_occupancy).
//
// -adapt turns on the online control plane: per-session DSFA retuning
// that tracks scene dynamics and backlog, and (under -mapper nmp)
// warm-started NMP remaps that re-place layers as load shifts. Retune
// and remap activity is exposed in /metrics (evserve_retunes_total,
// evserve_control_remap_*).
//
// API:
//
//	POST   /v1/sessions              {"network":"DOTIE","level":2}
//	POST   /v1/sessions/{id}/events  EVAR binary or JSON chunk
//	GET    /v1/sessions[/{id}]       session stats
//	GET    /v1/sessions/{id}/stream  SSE result stream (needs -journal; ?since=<seq> catch-up)
//	POST   /v1/sessions/{id}/close   flush + final stats
//	DELETE /v1/sessions/{id}         same as close
//	GET    /healthz                  liveness + session counts
//	GET    /metrics                  Prometheus text exposition
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	evedge "evedge"
)

func main() { os.Exit(run(os.Args[1:], os.Stderr)) }

// run parses flags and serves; it returns the process exit status so
// the flag error paths are testable (2 = bad flag syntax, 1 = bad
// configuration or serve failure).
func run(args []string, stderr io.Writer) int {
	fs := flag.NewFlagSet("evserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr     = fs.String("addr", ":7733", "listen address")
		platform = fs.String("platform", "xavier", "platform model: xavier or orin")
		workers  = fs.Int("workers", 4, "worker pool size")
		queue    = fs.Int("queue", 64, "default per-session ingest queue capacity (frames)")
		drop     = fs.String("drop", "drop-oldest", "default queue shed policy: drop-oldest or drop-newest")
		mapper   = fs.String("mapper", "rr", "session placement policy: rr (round-robin) or nmp (evolutionary search)")
		parallel = fs.Int("parallel", 0, "kernel worker-pool width for tiled sparse kernels and the rulebook cache (<= 1 = serial)")
		batchMax = fs.Int("batch-max", 8, "max compatible invocations coalesced per micro-batch (1 = serialized)")
		batchWin = fs.Duration("batch-window", 0, "how long a dispatcher holds work open for more compatible arrivals")
		adapt    = fs.Bool("adapt", false, "enable the online control plane (DSFA retuning; NMP remaps under -mapper nmp)")
		journal  = fs.Bool("journal", false, "enable per-session event journals (SSE result streaming at /v1/sessions/{id}/stream)")
		adaptInt = fs.Duration("adapt-interval", 50*time.Millisecond, "minimum stream time between retune decisions")
		cooldown = fs.Duration("remap-cooldown", 250*time.Millisecond, "minimum virtual time between NMP remaps")
		trace    = fs.String("trace", "", "enable frame-lifecycle tracing and write Chrome trace-event JSON here on shutdown (also served live at /v1/trace)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	cfg := evedge.DefaultServeConfig()
	p, err := evedge.PlatformByName(*platform)
	if err != nil {
		fmt.Fprintln(stderr, "evserve:", err)
		return 1
	}
	cfg.Platform = p
	cfg.Workers = *workers
	cfg.QueueCap = *queue
	cfg.Mapper = evedge.MapperPolicy(*mapper)
	cfg.Parallel = *parallel
	if *batchMax < 1 {
		fmt.Fprintf(stderr, "evserve: -batch-max must be >= 1, got %d\n", *batchMax)
		return 1
	}
	if *batchWin < 0 {
		fmt.Fprintf(stderr, "evserve: -batch-window must be >= 0, got %s\n", *batchWin)
		return 1
	}
	cfg.BatchMax = *batchMax
	cfg.BatchWindow = *batchWin
	cfg.DropPolicy, err = evedge.ParseDropPolicy(*drop)
	if err != nil {
		fmt.Fprintln(stderr, "evserve:", err)
		return 1
	}
	if *adapt {
		cfg.Adapt = evedge.ServeAdaptConfig{
			Retune: true,
			Remap:  cfg.Mapper == evedge.MapperNMP,
			DSFA:   evedge.RetunerConfig{DecideEveryUS: adaptInt.Microseconds()},
			Planner: evedge.RemapPlannerConfig{
				CooldownUS: float64(cooldown.Microseconds()),
			},
		}
	}
	if *trace != "" {
		cfg.Trace = evedge.TraceConfig{Enabled: true, Node: "server"}
	}
	cfg.Journal = *journal

	srv, err := evedge.NewServer(cfg)
	if err != nil {
		fmt.Fprintln(stderr, "evserve:", err)
		return 1
	}
	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}

	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Println("evserve: shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = hs.Shutdown(ctx)
		if *trace != "" {
			if err := writeTraceFile(srv, *trace); err != nil {
				log.Println("evserve:", err)
			} else {
				log.Printf("evserve: wrote trace to %s", *trace)
			}
		}
		srv.Close()
	}()

	log.Printf("evserve: listening on %s (platform=%s, workers=%d, queue=%d, mapper=%s, batch-max=%d, parallel=%d, adapt=%v)",
		*addr, cfg.Platform.Name, cfg.Workers, cfg.QueueCap, cfg.Mapper, cfg.BatchMax, cfg.Parallel, *adapt)
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(stderr, "evserve:", err)
		return 1
	}
	<-done
	return 0
}

// writeTraceFile dumps the server's frame-lifecycle trace as Chrome
// trace-event JSON (load in chrome://tracing or Perfetto).
func writeTraceFile(srv *evedge.Server, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("creating trace file: %w", err)
	}
	if err := srv.WriteTrace(f); err != nil {
		f.Close()
		return fmt.Errorf("writing trace: %w", err)
	}
	return f.Close()
}
