// Command evserve runs the multi-tenant streaming inference server: a
// long-lived HTTP service that accepts AER event streams into
// per-client sessions and multiplexes them onto one shared simulated
// Jetson Xavier AGX through the Ev-Edge pipeline.
//
// Usage:
//
//	evserve [-addr :7733] [-platform xavier|orin] [-workers 4]
//	        [-queue 64] [-drop drop-oldest] [-mapper rr|nmp]
//	        [-adapt] [-adapt-interval 50ms] [-remap-cooldown 250ms]
//
// -adapt turns on the online control plane: per-session DSFA retuning
// that tracks scene dynamics and backlog, and (under -mapper nmp)
// warm-started NMP remaps that re-place layers as load shifts. Retune
// and remap activity is exposed in /metrics (evserve_retunes_total,
// evserve_control_remap_*).
//
// API:
//
//	POST   /v1/sessions              {"network":"DOTIE","level":2}
//	POST   /v1/sessions/{id}/events  EVAR binary or JSON chunk
//	GET    /v1/sessions[/{id}]       session stats
//	POST   /v1/sessions/{id}/close   flush + final stats
//	DELETE /v1/sessions/{id}         same as close
//	GET    /healthz                  liveness + session counts
//	GET    /metrics                  Prometheus text exposition
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	evedge "evedge"
)

func main() {
	var (
		addr     = flag.String("addr", ":7733", "listen address")
		platform = flag.String("platform", "xavier", "platform model: xavier or orin")
		workers  = flag.Int("workers", 4, "worker pool size")
		queue    = flag.Int("queue", 64, "default per-session ingest queue capacity (frames)")
		drop     = flag.String("drop", "drop-oldest", "default queue shed policy: drop-oldest or drop-newest")
		mapper   = flag.String("mapper", "rr", "session placement policy: rr (round-robin) or nmp (evolutionary search)")
		adapt    = flag.Bool("adapt", false, "enable the online control plane (DSFA retuning; NMP remaps under -mapper nmp)")
		adaptInt = flag.Duration("adapt-interval", 50*time.Millisecond, "minimum stream time between retune decisions")
		cooldown = flag.Duration("remap-cooldown", 250*time.Millisecond, "minimum virtual time between NMP remaps")
	)
	flag.Parse()

	cfg := evedge.DefaultServeConfig()
	p, err := evedge.PlatformByName(*platform)
	if err != nil {
		fmt.Fprintln(os.Stderr, "evserve:", err)
		os.Exit(1)
	}
	cfg.Platform = p
	cfg.Workers = *workers
	cfg.QueueCap = *queue
	cfg.Mapper = evedge.MapperPolicy(*mapper)
	cfg.DropPolicy, err = evedge.ParseDropPolicy(*drop)
	if err != nil {
		fmt.Fprintln(os.Stderr, "evserve:", err)
		os.Exit(1)
	}
	if *adapt {
		cfg.Adapt = evedge.ServeAdaptConfig{
			Retune: true,
			Remap:  cfg.Mapper == evedge.MapperNMP,
			DSFA:   evedge.RetunerConfig{DecideEveryUS: adaptInt.Microseconds()},
			Planner: evedge.RemapPlannerConfig{
				CooldownUS: float64(cooldown.Microseconds()),
			},
		}
	}

	srv, err := evedge.NewServer(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "evserve:", err)
		os.Exit(1)
	}
	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}

	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Println("evserve: shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = hs.Shutdown(ctx)
		srv.Close()
	}()

	log.Printf("evserve: listening on %s (platform=%s, workers=%d, queue=%d, mapper=%s, adapt=%v)",
		*addr, cfg.Platform.Name, cfg.Workers, cfg.QueueCap, cfg.Mapper, *adapt)
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "evserve:", err)
		os.Exit(1)
	}
	<-done
}
