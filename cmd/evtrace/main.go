// Command evtrace generates synthetic event-camera sequences and
// inspects their statistics: event counts, spatial density, and the
// temporal-density timeline of the paper's Fig. 5.
//
// Usage:
//
//	evtrace [-preset indoorflying2] [-dur us] [-seed N] [-full]
//	        [-bucket us] [-o file.evar] [-text]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	evedge "evedge"
	"evedge/internal/events"
	"evedge/internal/scene"
)

func main() {
	var (
		preset = flag.String("preset", string(scene.IndoorFlying2), "sequence preset (see -list)")
		dur    = flag.Int64("dur", 2_000_000, "duration in microseconds")
		seed   = flag.Int64("seed", 7, "random seed")
		full   = flag.Bool("full", false, "full DAVIS346 resolution")
		bucket = flag.Int64("bucket", 50_000, "density timeline bucket in microseconds")
		out    = flag.String("o", "", "write the stream to this file (EVAR binary)")
		asText = flag.Bool("text", false, "write the text format instead of binary")
		list   = flag.Bool("list", false, "list presets and exit")
	)
	flag.Parse()

	if *list {
		var names []string
		for _, p := range evedge.Presets() {
			names = append(names, string(p))
		}
		fmt.Println(strings.Join(names, "\n"))
		return
	}
	scale := evedge.HalfScale
	if *full {
		scale = evedge.FullScale
	}
	stream, err := evedge.GenerateSequence(scene.Preset(*preset), scale, *seed, *dur)
	if err != nil {
		fmt.Fprintln(os.Stderr, "evtrace:", err)
		os.Exit(1)
	}

	st := stream.Summarize()
	fmt.Printf("preset:   %s (%s)\n", *preset, scene.DatasetOf(scene.Preset(*preset)))
	fmt.Printf("sensor:   %dx%d\n", stream.Width, stream.Height)
	fmt.Printf("events:   %s\n", st)
	fmt.Printf("timeline (events per %.0f ms):\n", float64(*bucket)/1000)
	series := stream.DensitySeries(*bucket)
	peak := 0
	for _, c := range series {
		if c > peak {
			peak = c
		}
	}
	for i, c := range series {
		bar := ""
		if peak > 0 {
			bar = strings.Repeat("#", c*60/peak)
		}
		fmt.Printf("%7.0fms %7d %s\n", float64(int64(i)*(*bucket))/1000, c, bar)
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "evtrace:", err)
			os.Exit(1)
		}
		defer f.Close()
		if *asText {
			err = events.WriteText(f, stream)
		} else {
			err = events.WriteBinary(f, stream)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "evtrace:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *out)
	}
}
