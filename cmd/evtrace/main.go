// Command evtrace generates synthetic event-camera sequences and
// inspects their statistics: event counts, spatial density, and the
// temporal-density timeline of the paper's Fig. 5.
//
// Usage:
//
//	evtrace [-preset indoorflying2] [-dur us] [-seed N] [-full]
//	        [-bucket us] [-o file.evar] [-text]
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	evedge "evedge"
	"evedge/internal/events"
	"evedge/internal/scene"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

// run parses flags and generates the sequence; it returns the process
// exit status so the flag error paths are testable (2 = bad flag
// syntax, 1 = bad configuration or generation failure).
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("evtrace", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		preset = fs.String("preset", string(scene.IndoorFlying2), "sequence preset (see -list)")
		dur    = fs.Int64("dur", 2_000_000, "duration in microseconds")
		seed   = fs.Int64("seed", 7, "random seed")
		full   = fs.Bool("full", false, "full DAVIS346 resolution")
		bucket = fs.Int64("bucket", 50_000, "density timeline bucket in microseconds")
		out    = fs.String("o", "", "write the stream to this file (EVAR binary)")
		asText = fs.Bool("text", false, "write the text format instead of binary")
		list   = fs.Bool("list", false, "list presets and exit")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	if *list {
		var names []string
		for _, p := range evedge.Presets() {
			names = append(names, string(p))
		}
		fmt.Fprintln(stdout, strings.Join(names, "\n"))
		return 0
	}
	if *bucket <= 0 {
		fmt.Fprintf(stderr, "evtrace: -bucket must be positive, got %d\n", *bucket)
		return 1
	}
	scale := evedge.HalfScale
	if *full {
		scale = evedge.FullScale
	}
	stream, err := evedge.GenerateSequence(scene.Preset(*preset), scale, *seed, *dur)
	if err != nil {
		fmt.Fprintln(stderr, "evtrace:", err)
		return 1
	}

	st := stream.Summarize()
	fmt.Fprintf(stdout, "preset:   %s (%s)\n", *preset, scene.DatasetOf(scene.Preset(*preset)))
	fmt.Fprintf(stdout, "sensor:   %dx%d\n", stream.Width, stream.Height)
	fmt.Fprintf(stdout, "events:   %s\n", st)
	fmt.Fprintf(stdout, "timeline (events per %.0f ms):\n", float64(*bucket)/1000)
	series := stream.DensitySeries(*bucket)
	peak := 0
	for _, c := range series {
		if c > peak {
			peak = c
		}
	}
	for i, c := range series {
		bar := ""
		if peak > 0 {
			bar = strings.Repeat("#", c*60/peak)
		}
		fmt.Fprintf(stdout, "%7.0fms %7d %s\n", float64(int64(i)*(*bucket))/1000, c, bar)
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(stderr, "evtrace:", err)
			return 1
		}
		if *asText {
			err = events.WriteText(f, stream)
		} else {
			err = events.WriteBinary(f, stream)
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(stderr, "evtrace:", err)
			return 1
		}
		fmt.Fprintf(stdout, "wrote %s\n", *out)
	}
	return 0
}
