package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunFlagErrors drives the flag and configuration error paths:
// exit status and message are part of the CLI contract.
func TestRunFlagErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		exit int
		msg  string
	}{
		{"bad flag syntax", []string{"-dur", "forever"}, 2, "invalid value"},
		{"unknown flag", []string{"-no-such-flag"}, 2, "flag provided but not defined"},
		{"unknown preset", []string{"-preset", "marsrover"}, 1, "marsrover"},
		{"bad bucket", []string{"-bucket", "0"}, 1, "-bucket must be positive"},
		{"unwritable output", []string{"-dur", "10000", "-o", "/no/such/dir/out.evar"}, 1, "no such"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			got := run(tc.args, &stdout, &stderr)
			if got != tc.exit {
				t.Errorf("exit = %d, want %d (stderr: %s)", got, tc.exit, stderr.String())
			}
			if !strings.Contains(stderr.String(), tc.msg) {
				t.Errorf("stderr %q does not mention %q", stderr.String(), tc.msg)
			}
		})
	}
}

// TestRunList checks -list prints at least the default preset.
func TestRunList(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if got := run([]string{"-list"}, &stdout, &stderr); got != 0 {
		t.Fatalf("exit = %d, stderr: %s", got, stderr.String())
	}
	if !strings.Contains(stdout.String(), "indoorflying2") {
		t.Errorf("-list missing default preset:\n%s", stdout.String())
	}
}

// TestRunGenerate runs a short generation end to end, including the
// EVAR file output.
func TestRunGenerate(t *testing.T) {
	out := filepath.Join(t.TempDir(), "s.evar")
	var stdout, stderr bytes.Buffer
	if got := run([]string{"-dur", "100000", "-o", out}, &stdout, &stderr); got != 0 {
		t.Fatalf("exit = %d, stderr: %s", got, stderr.String())
	}
	for _, want := range []string{"preset:   indoorflying2", "timeline", "wrote " + out} {
		if !strings.Contains(stdout.String(), want) {
			t.Errorf("output missing %q:\n%s", want, stdout.String())
		}
	}
}
