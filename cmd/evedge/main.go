// Command evedge runs the end-to-end Ev-Edge streaming pipeline on a
// synthetic event sequence and reports latency, throughput, energy and
// accuracy.
//
// Usage:
//
//	evedge [-net SpikeFlowNet] [-level 0..3] [-dur us] [-seed N] [-full]
//
// Levels: 0 = all-GPU baseline, 1 = +E2SF, 2 = +E2SF+DSFA,
// 3 = full Ev-Edge (+NMP).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	evedge "evedge"
)

func main() {
	var (
		netName = flag.String("net", evedge.SpikeFlowNet, "network to run (see -list)")
		level   = flag.Int("level", 3, "optimization level 0-3")
		dur     = flag.Int64("dur", 2_000_000, "stream duration in microseconds")
		seed    = flag.Int64("seed", 7, "random seed")
		full    = flag.Bool("full", false, "full DAVIS346 resolution (default: half, faster)")
		list    = flag.Bool("list", false, "list network names and exit")
	)
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(evedge.Networks(), "\n"))
		return
	}
	net, err := evedge.LoadNetwork(*netName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "evedge:", err)
		os.Exit(1)
	}
	if *level < 0 || *level > 3 {
		fmt.Fprintln(os.Stderr, "evedge: level must be 0-3")
		os.Exit(1)
	}
	scale := evedge.HalfScale
	if *full {
		scale = evedge.FullScale
	}
	rep, err := evedge.RunPipeline(evedge.PipelineConfig{
		Net:   net,
		Level: evedge.Level(*level),
		Scale: scale,
		DurUS: *dur,
		Seed:  *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "evedge:", err)
		os.Exit(1)
	}

	fmt.Printf("network:        %s (%s, %s)\n", net.Name, net.TypeDesc, net.Task)
	fmt.Printf("sequence:       %s, %.1f s\n", net.Input.Preset, float64(*dur)*1e-6)
	fmt.Printf("level:          %s\n", rep.Level)
	fmt.Printf("raw frames:     %d (mean density %.2f%%)\n", rep.RawFrames, rep.MeanDensity*100)
	fmt.Printf("invocations:    %d (merge ratio %.2f, %d dropped)\n",
		rep.Invocations, rep.MergeRatio, rep.DroppedFrames)
	fmt.Printf("mean latency:   %.2f ms (p99 %.2f ms)\n", rep.MeanLatencyUS/1000, rep.P99LatencyUS/1000)
	fmt.Printf("throughput:     %.0f frames/s\n", rep.ThroughputFPS)
	fmt.Printf("energy:         %.1f J\n", rep.EnergyJ)
	fmt.Printf("accuracy:       %.2f %s (baseline %.2f, delta %.3f)\n",
		rep.Accuracy, net.Metric.Name, net.BaselineAccuracy, rep.AccuracyDelta)
	if rep.Assignment != nil {
		fmt.Printf("nmp:            feasible=%v, %d evaluations, %d cache hits\n",
			rep.Assignment.Feasible, rep.Assignment.Evaluations, rep.Assignment.CacheHits)
	}
}
