// Command evedge runs the end-to-end Ev-Edge streaming pipeline on a
// synthetic event sequence and reports latency, throughput, energy and
// accuracy.
//
// Usage:
//
//	evedge [-net SpikeFlowNet] [-opt nmp] [-platform xavier|orin]
//	       [-dur us] [-seed N] [-full] [-json]
//
// Levels (-opt, by name or number): 0|all-gpu = baseline, 1|e2sf =
// +E2SF, 2|dsfa = +E2SF+DSFA, 3|nmp = full Ev-Edge. Unknown -opt
// values are rejected with the valid list — never silently mapped to
// a default. -level N is the numeric spelling of the same flag.
// -json emits the report as machine-readable JSON for CI and
// load-generator consumption.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	evedge "evedge"
)

// jsonReport is the machine-readable run summary: the pipeline report
// nested under its own key so the untagged report fields cannot
// collide with the meta fields.
type jsonReport struct {
	Network          string                 `json:"network"`
	Type             string                 `json:"type"`
	Task             string                 `json:"task"`
	Sequence         string                 `json:"sequence"`
	Level            string                 `json:"level"`
	Platform         string                 `json:"platform"`
	DurationUS       int64                  `json:"duration_us"`
	Seed             int64                  `json:"seed"`
	Metric           string                 `json:"metric"`
	BaselineAccuracy float64                `json:"baseline_accuracy"`
	Report           *evedge.PipelineReport `json:"report"`
}

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

// run parses flags and executes one pipeline run; it returns the
// process exit status so the flag error paths are testable (2 = bad
// flag syntax, 1 = bad configuration or run failure).
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("evedge", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		netName  = fs.String("net", evedge.SpikeFlowNet, "network to run (see -list)")
		opt      = fs.String("opt", "", "optimization level by name or number: 0|all-gpu, 1|e2sf, 2|dsfa, 3|nmp")
		level    = fs.Int("level", 3, "optimization level 0-3 (numeric alias of -opt)")
		platform = fs.String("platform", "xavier", "platform model: xavier or orin")
		dur      = fs.Int64("dur", 2_000_000, "stream duration in microseconds")
		seed     = fs.Int64("seed", 7, "random seed")
		full     = fs.Bool("full", false, "full DAVIS346 resolution (default: half, faster)")
		list     = fs.Bool("list", false, "list network names and exit")
		asJSON   = fs.Bool("json", false, "emit the report as JSON")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	if *list {
		fmt.Fprintln(stdout, strings.Join(evedge.Networks(), "\n"))
		return 0
	}
	net, err := evedge.LoadNetwork(*netName)
	if err != nil {
		fmt.Fprintln(stderr, "evedge:", err)
		return 1
	}
	optArg := *opt
	if optArg == "" {
		optArg = fmt.Sprint(*level)
	}
	lvl, err := evedge.ParseLevel(optArg)
	if err != nil {
		fmt.Fprintln(stderr, "evedge:", err)
		return 1
	}
	plat, err := evedge.PlatformByName(*platform)
	if err != nil {
		fmt.Fprintln(stderr, "evedge:", err)
		return 1
	}
	scale := evedge.HalfScale
	if *full {
		scale = evedge.FullScale
	}
	rep, err := evedge.RunPipeline(evedge.PipelineConfig{
		Net:      net,
		Platform: plat,
		Level:    lvl,
		Scale:    scale,
		DurUS:    *dur,
		Seed:     *seed,
	})
	if err != nil {
		fmt.Fprintln(stderr, "evedge:", err)
		return 1
	}

	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(jsonReport{
			Network:          net.Name,
			Type:             net.TypeDesc,
			Task:             net.Task.String(),
			Sequence:         string(net.Input.Preset),
			Level:            rep.Level.String(),
			Platform:         plat.Name,
			DurationUS:       *dur,
			Seed:             *seed,
			Metric:           net.Metric.Name,
			BaselineAccuracy: net.BaselineAccuracy,
			Report:           rep,
		}); err != nil {
			fmt.Fprintln(stderr, "evedge:", err)
			return 1
		}
		return 0
	}

	fmt.Fprintf(stdout, "network:        %s (%s, %s)\n", net.Name, net.TypeDesc, net.Task)
	fmt.Fprintf(stdout, "sequence:       %s, %.1f s\n", net.Input.Preset, float64(*dur)*1e-6)
	fmt.Fprintf(stdout, "level:          %s\n", rep.Level)
	fmt.Fprintf(stdout, "platform:       %s\n", plat.Name)
	fmt.Fprintf(stdout, "raw frames:     %d (mean density %.2f%%)\n", rep.RawFrames, rep.MeanDensity*100)
	fmt.Fprintf(stdout, "invocations:    %d (merge ratio %.2f, %d dropped)\n",
		rep.Invocations, rep.MergeRatio, rep.DroppedFrames)
	fmt.Fprintf(stdout, "mean latency:   %.2f ms (p99 %.2f ms)\n", rep.MeanLatencyUS/1000, rep.P99LatencyUS/1000)
	fmt.Fprintf(stdout, "throughput:     %.0f frames/s\n", rep.ThroughputFPS)
	fmt.Fprintf(stdout, "energy:         %.1f J\n", rep.EnergyJ)
	fmt.Fprintf(stdout, "accuracy:       %.2f %s (baseline %.2f, delta %.3f)\n",
		rep.Accuracy, net.Metric.Name, net.BaselineAccuracy, rep.AccuracyDelta)
	if rep.Assignment != nil {
		fmt.Fprintf(stdout, "nmp:            feasible=%v, %d evaluations, %d cache hits\n",
			rep.Assignment.Feasible, rep.Assignment.Evaluations, rep.Assignment.CacheHits)
	}
	return 0
}
