package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunFlagErrors drives the flag-parsing error paths: unknown -opt
// levels, networks and platforms must exit non-zero with a message
// naming the valid choices, never fall back silently.
func TestRunFlagErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		exit int
		msg  string
	}{
		{"unknown opt level", []string{"-opt", "turbo"}, 1, `unknown optimization level "turbo"`},
		{"numeric level out of range", []string{"-level", "9"}, 1, `unknown optimization level "9"`},
		{"unknown network", []string{"-net", "NoSuchNet"}, 1, "NoSuchNet"},
		{"unknown platform", []string{"-platform", "tpu"}, 1, `unknown platform "tpu"`},
		{"bad flag syntax", []string{"-dur", "forever"}, 2, "invalid value"},
		{"unknown flag", []string{"-no-such-flag"}, 2, "flag provided but not defined"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			got := run(tc.args, &stdout, &stderr)
			if got != tc.exit {
				t.Errorf("exit = %d, want %d (stderr: %s)", got, tc.exit, stderr.String())
			}
			if !strings.Contains(stderr.String(), tc.msg) {
				t.Errorf("stderr %q does not mention %q", stderr.String(), tc.msg)
			}
		})
	}
}

// TestRunList checks the happy -list path (no pipeline run).
func TestRunList(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if got := run([]string{"-list"}, &stdout, &stderr); got != 0 {
		t.Fatalf("exit = %d, stderr: %s", got, stderr.String())
	}
	if !strings.Contains(stdout.String(), "DOTIE") {
		t.Errorf("-list output missing DOTIE:\n%s", stdout.String())
	}
}
