package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunFlagErrors drives the flag and configuration error paths
// through the testable run entry point.
func TestRunFlagErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want int
		errs string
	}{
		{"bad flag syntax", []string{"-nope"}, 2, "flag provided but not defined"},
		{"help", []string{"-h"}, 0, "Usage of evload"},
		{"bad wire format", []string{"-wire", "carrier-pigeon"}, 1, `unknown wire format "carrier-pigeon"`},
		{"bad level", []string{"-level", "9"}, 1, "level"},
		{"bad level name", []string{"-level", "turbo"}, 1, "turbo"},
		{"zero sessions", []string{"-sessions", "0"}, 1, "-sessions must be >= 1"},
		{"unreachable server", []string{"-addr", "http://127.0.0.1:1", "-sessions", "1"}, 1, "server not reachable"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if got := run(tc.args, &stdout, &stderr); got != tc.want {
				t.Fatalf("run(%v) = %d, want %d (stderr: %s)", tc.args, got, tc.want, stderr.String())
			}
			if tc.errs != "" && !strings.Contains(stderr.String(), tc.errs) {
				t.Fatalf("stderr %q does not mention %q", stderr.String(), tc.errs)
			}
		})
	}
}
