// Command evload replays synthetic event-camera sequences against a
// running evserve instance and reports per-session and aggregate
// latency/throughput — the closed-loop "how many cameras can one
// Xavier serve" experiment.
//
// Usage:
//
//	evload [-addr http://localhost:7733] [-sessions 4] [-nets a,b,...]
//	       [-level 2] [-dur us] [-chunk us] [-rate eps] [-speed x]
//	       [-wire evar|json] [-seed N] [-json] [-stream]
//
// Each concurrent session streams its network's scene preset in
// chunk-sized pieces. -rate subsamples events to approximate a target
// events/second; -speed paces replay relative to sensor time (1 =
// real time, 0 = as fast as possible).
//
// -stream additionally subscribes each session to the server-push SSE
// result stream (the server must run -journal) and reports how many
// results and frames arrived over the push path alongside the polled
// final stats.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	evedge "evedge"
)

type sessionReport struct {
	Session       string  `json:"session"`
	Node          string  `json:"node,omitempty"`
	Network       string  `json:"network"`
	Events        int     `json:"events"`
	Chunks        int     `json:"chunks"`
	FramesIn      uint64  `json:"frames_in"`
	FramesDropped uint64  `json:"frames_dropped"`
	Invocations   uint64  `json:"invocations"`
	MergeRatio    float64 `json:"merge_ratio"`
	ThroughputFPS float64 `json:"throughput_fps"`
	// Retunes counts DSFA tuning changes the online controller applied
	// (0 unless the server runs -adapt). Remaps counts execution plans
	// installed after the first — session-churn rebalances as well as
	// load-driven adaptive remaps.
	Retunes uint64 `json:"retunes"`
	Remaps  uint64 `json:"remaps"`
	// StreamedResults/StreamedFrames count what arrived over the SSE
	// push stream (-stream against a -journal server); zero otherwise.
	StreamedResults uint64  `json:"streamed_results,omitempty"`
	StreamedFrames  uint64  `json:"streamed_frames,omitempty"`
	SimP50MS        float64 `json:"sim_p50_ms"`
	SimP99MS        float64 `json:"sim_p99_ms"`
	WallP50MS       float64 `json:"wall_p50_ms"`
	WallP99MS       float64 `json:"wall_p99_ms"`
	Err             string  `json:"error,omitempty"`
}

// nodeDist is one row of the per-node session-distribution table,
// populated when the target is a cluster (session snapshots carry a
// node name).
type nodeDist struct {
	Node          string `json:"node"`
	Sessions      int    `json:"sessions"`
	Events        int    `json:"events"`
	FramesIn      uint64 `json:"frames_in"`
	FramesDropped uint64 `json:"frames_dropped"`
}

type loadReport struct {
	Sessions           []sessionReport `json:"sessions"`
	TotalEvents        int             `json:"total_events"`
	TotalFramesIn      uint64          `json:"total_frames_in"`
	TotalFramesDropped uint64          `json:"total_frames_dropped"`
	// ShedRate is the aggregate ingest-queue loss:
	// frames_dropped / frames_in over all sessions.
	ShedRate     float64 `json:"shed_rate"`
	WallSeconds  float64 `json:"wall_seconds"`
	EventsPerSec float64 `json:"events_per_sec"`
	MaxSimP99MS  float64 `json:"max_sim_p99_ms"`
	// RetunesPerSession/RemapsPerSession average the control-plane
	// activity over successful sessions.
	RetunesPerSession float64 `json:"retunes_per_session"`
	RemapsPerSession  float64 `json:"remaps_per_session"`
	// TotalStreamed* aggregate the SSE push path (-stream runs only).
	TotalStreamedResults uint64     `json:"total_streamed_results,omitempty"`
	TotalStreamedFrames  uint64     `json:"total_streamed_frames,omitempty"`
	Nodes                []nodeDist `json:"nodes,omitempty"`
}

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

// run parses flags and drives the load; it returns the process exit
// status so the flag error paths are testable (2 = bad flag syntax,
// 1 = bad configuration, unreachable server or a failed session).
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("evload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr     = fs.String("addr", "http://localhost:7733", "evserve base URL")
		sessions = fs.Int("sessions", 4, "concurrent sessions")
		netsFlag = fs.String("nets", "DOTIE,HALSIE,SpikeFlowNet,HidalgoDepth",
			"comma-separated networks, cycled over sessions")
		level   = fs.String("level", "2", "optimization level by name or number: 0|all-gpu, 1|e2sf, 2|dsfa, 3|nmp")
		dur     = fs.Int64("dur", 1_000_000, "sensor-time duration per session (us)")
		chunk   = fs.Int64("chunk", 25_000, "chunk duration per POST (us)")
		rate    = fs.Float64("rate", 0, "subsample to ~N events/s (0 = native rate)")
		speed   = fs.Float64("speed", 0, "replay speed vs sensor time (1 = real time, 0 = flat out)")
		wire    = fs.String("wire", "evar", "wire format: evar (binary) or json")
		seed    = fs.Int64("seed", 42, "base random seed")
		jsonOut = fs.Bool("json", false, "emit the report as JSON")
		stream  = fs.Bool("stream", false, "follow each session's SSE result stream (server must run -journal)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if *sessions < 1 {
		fmt.Fprintf(stderr, "evload: -sessions must be >= 1, got %d\n", *sessions)
		return 1
	}
	if *wire != "evar" && *wire != "json" {
		fmt.Fprintf(stderr, "evload: unknown wire format %q\n", *wire)
		return 1
	}
	lvl, err := evedge.ParseLevel(*level)
	if err != nil {
		fmt.Fprintln(stderr, "evload:", err)
		return 1
	}

	names := strings.Split(*netsFlag, ",")
	cl := evedge.NewServeClient(*addr, nil)
	if _, err := cl.Health(); err != nil {
		fmt.Fprintf(stderr, "evload: server not reachable: %v\n", err)
		return 1
	}
	// The SSE stream outlives the default 30s client deadline, so the
	// streaming client runs without one (lifetime bounded by context).
	var streamCl *evedge.ServeClient
	if *stream {
		streamCl = evedge.NewServeClient(*addr, &http.Client{})
	}

	reports := make([]sessionReport, *sessions)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < *sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := strings.TrimSpace(names[i%len(names)])
			reports[i] = runSession(cl, streamCl, name, int(lvl), *dur, *chunk, *rate, *speed, *wire, *seed+int64(i))
		}(i)
	}
	wg.Wait()
	wall := time.Since(start).Seconds()

	rep := loadReport{Sessions: reports, WallSeconds: wall}
	failed := false
	byNode := map[string]*nodeDist{}
	var nodeOrder []string
	var ok, retunes, remaps int
	for _, r := range reports {
		if r.Err != "" {
			failed = true
			continue
		}
		ok++
		retunes += int(r.Retunes)
		remaps += int(r.Remaps)
		rep.TotalEvents += r.Events
		rep.TotalFramesIn += r.FramesIn
		rep.TotalFramesDropped += r.FramesDropped
		rep.TotalStreamedResults += r.StreamedResults
		rep.TotalStreamedFrames += r.StreamedFrames
		if r.SimP99MS > rep.MaxSimP99MS {
			rep.MaxSimP99MS = r.SimP99MS
		}
		if r.Node != "" {
			d, ok := byNode[r.Node]
			if !ok {
				d = &nodeDist{Node: r.Node}
				byNode[r.Node] = d
				nodeOrder = append(nodeOrder, r.Node)
			}
			d.Sessions++
			d.Events += r.Events
			d.FramesIn += r.FramesIn
			d.FramesDropped += r.FramesDropped
		}
	}
	if rep.TotalFramesIn > 0 {
		rep.ShedRate = float64(rep.TotalFramesDropped) / float64(rep.TotalFramesIn)
	}
	if ok > 0 {
		rep.RetunesPerSession = float64(retunes) / float64(ok)
		rep.RemapsPerSession = float64(remaps) / float64(ok)
	}
	sort.Strings(nodeOrder)
	for _, n := range nodeOrder {
		rep.Nodes = append(rep.Nodes, *byNode[n])
	}
	if wall > 0 {
		rep.EventsPerSec = float64(rep.TotalEvents) / wall
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(stderr, "evload:", err)
			return 1
		}
	} else {
		printReport(stdout, rep)
	}
	if failed {
		return 1
	}
	return 0
}

// runSession streams one session end to end and collapses it into a
// report row. A non-nil streamCl additionally follows the session's
// SSE result stream for its whole lifetime.
func runSession(cl, streamCl *evedge.ServeClient, name string, level int, dur, chunkUS int64, rate, speed float64, wire string, seed int64) sessionReport {
	rep := sessionReport{Network: name}
	fail := func(err error) sessionReport {
		rep.Err = err.Error()
		return rep
	}
	net, err := evedge.LoadNetwork(name)
	if err != nil {
		return fail(err)
	}
	stream, err := evedge.GenerateSequence(net.Input.Preset, evedge.HalfScale, seed, dur)
	if err != nil {
		return fail(err)
	}
	if rate > 0 {
		stream = subsample(stream, rate, dur)
	}

	snap, err := cl.CreateSession(evedge.ServeSessionConfig{Network: name, Level: level})
	if err != nil {
		return fail(err)
	}
	rep.Session = snap.ID

	// The push subscription rides alongside ingest; CloseSession ends
	// the journal, which ends the stream (event: close -> nil).
	streamDone := make(chan error, 1)
	if streamCl != nil {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		go func() {
			streamDone <- streamCl.StreamResults(ctx, snap.ID, 0, func(ev evedge.ResultEvent) error {
				rep.StreamedResults++
				rep.StreamedFrames += uint64(ev.Frames)
				return nil
			})
		}()
	}

	var wallUS []float64
	for t0 := int64(0); t0 < dur; t0 += chunkUS {
		c := stream.Slice(t0, t0+chunkUS)
		req := time.Now()
		var err error
		if wire == "json" {
			_, err = cl.SendEventsJSON(snap.ID, c)
		} else {
			_, err = cl.SendEvents(snap.ID, c)
		}
		if err != nil {
			return fail(err)
		}
		wallUS = append(wallUS, float64(time.Since(req).Microseconds()))
		rep.Events += c.Len()
		rep.Chunks++
		if speed > 0 {
			if lag := time.Duration(float64(chunkUS)/speed)*time.Microsecond - time.Since(req); lag > 0 {
				time.Sleep(lag)
			}
		}
	}

	fin, err := cl.CloseSession(snap.ID)
	if err != nil {
		return fail(err)
	}
	if streamCl != nil {
		select {
		case serr := <-streamDone:
			if serr != nil {
				return fail(fmt.Errorf("result stream: %w", serr))
			}
		case <-time.After(10 * time.Second):
			return fail(errors.New("result stream did not close with the session"))
		}
	}
	rep.Node = fin.Node
	rep.FramesIn = fin.FramesIn
	rep.FramesDropped = fin.FramesDropped
	rep.Invocations = fin.Invocations
	rep.MergeRatio = fin.MergeRatio
	rep.ThroughputFPS = fin.ThroughputFPS
	rep.Retunes = fin.Retunes
	rep.Remaps = fin.Remaps
	rep.SimP50MS = fin.Latency.P50US / 1000
	rep.SimP99MS = fin.Latency.P99US / 1000
	sort.Float64s(wallUS)
	rep.WallP50MS = pick(wallUS, 0.50) / 1000
	rep.WallP99MS = pick(wallUS, 0.99) / 1000
	return rep
}

// subsample thins the stream to approximately targetEPS events/s.
func subsample(s *evedge.Stream, targetEPS float64, durUS int64) *evedge.Stream {
	native := float64(s.Len()) / (float64(durUS) * 1e-6)
	if native <= targetEPS || native == 0 {
		return s
	}
	keepEvery := native / targetEPS
	out := &evedge.Stream{Width: s.Width, Height: s.Height}
	next := 0.0
	for i, e := range s.Events {
		if float64(i) >= next {
			out.Events = append(out.Events, e)
			next += keepEvery
		}
	}
	return out
}

// pick reads a quantile from a sorted sample.
func pick(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func printReport(w io.Writer, rep loadReport) {
	clustered := len(rep.Nodes) > 0
	node := func(r sessionReport) string {
		if !clustered {
			return ""
		}
		return fmt.Sprintf(" %-10s", r.Node)
	}
	head := ""
	if clustered {
		head = fmt.Sprintf(" %-10s", "node")
	}
	fmt.Fprintf(w, "%-6s%s %-18s %9s %8s %7s %7s %7s %7s %9s %9s %9s %9s\n",
		"sess", head, "network", "events", "frames", "drops", "invoc", "retunes", "remaps", "fps", "sim p50", "sim p99", "wall p99")
	for _, r := range rep.Sessions {
		if r.Err != "" {
			fmt.Fprintf(w, "%-6s%s %-18s ERROR: %s\n", r.Session, node(r), r.Network, r.Err)
			continue
		}
		fmt.Fprintf(w, "%-6s%s %-18s %9d %8d %7d %7d %7d %7d %9.1f %7.2fms %7.2fms %7.2fms\n",
			r.Session, node(r), r.Network, r.Events, r.FramesIn, r.FramesDropped, r.Invocations,
			r.Retunes, r.Remaps, r.ThroughputFPS, r.SimP50MS, r.SimP99MS, r.WallP99MS)
	}
	fmt.Fprintf(w, "\ntotal: %d events in %.2fs (%.0f events/s), worst sim p99 %.2f ms\n",
		rep.TotalEvents, rep.WallSeconds, rep.EventsPerSec, rep.MaxSimP99MS)
	fmt.Fprintf(w, "shed:  %d of %d frames dropped (%.2f%% shed rate)\n",
		rep.TotalFramesDropped, rep.TotalFramesIn, rep.ShedRate*100)
	fmt.Fprintf(w, "adapt: %.1f retunes/session, %.1f remaps/session\n",
		rep.RetunesPerSession, rep.RemapsPerSession)
	if rep.TotalStreamedResults > 0 {
		fmt.Fprintf(w, "push:  %d results (%d frames) delivered over SSE\n",
			rep.TotalStreamedResults, rep.TotalStreamedFrames)
	}
	if clustered {
		fmt.Fprintf(w, "\n%-10s %9s %9s %8s %7s\n", "node", "sessions", "events", "frames", "drops")
		for _, d := range rep.Nodes {
			fmt.Fprintf(w, "%-10s %9d %9d %8d %7d\n", d.Node, d.Sessions, d.Events, d.FramesIn, d.FramesDropped)
		}
	}
}
