package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunFlagErrors drives the flag-parsing error paths: every bad
// fleet configuration must exit non-zero with a message naming the
// problem, never fall back silently.
func TestRunFlagErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		exit int
		msg  string
	}{
		{"bad node count", []string{"-nodes", "xavier:0"}, 1, "bad node count"},
		{"unknown node platform", []string{"-nodes", "tpu:2"}, 1, `unknown platform "tpu"`},
		{"empty node spec", []string{"-nodes", ","}, 1, "no node specs"},
		{"unknown policy", []string{"-policy", "round-robin"}, 1, `unknown placement policy "round-robin"`},
		{"unknown drop policy", []string{"-drop", "drop-random"}, 1, `unknown drop policy "drop-random"`},
		{"unknown mapper", []string{"-mapper", "greedy"}, 1, `unknown mapper policy "greedy"`},
		{"zero batch max", []string{"-batch-max", "0"}, 1, "-batch-max must be >= 1"},
		{"negative batch window", []string{"-batch-window", "-5ms"}, 1, "-batch-window must be >= 0"},
		{"bad flag syntax", []string{"-rebalance-gap", "wide"}, 2, "invalid value"},
		{"unknown flag", []string{"-no-such-flag"}, 2, "flag provided but not defined"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stderr bytes.Buffer
			got := run(tc.args, &stderr)
			if got != tc.exit {
				t.Errorf("exit = %d, want %d (stderr: %s)", got, tc.exit, stderr.String())
			}
			if !strings.Contains(stderr.String(), tc.msg) {
				t.Errorf("stderr %q does not mention %q", stderr.String(), tc.msg)
			}
		})
	}
}
