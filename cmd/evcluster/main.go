// Command evcluster runs the sharded multi-node serving fleet: N
// embedded evserve nodes (heterogeneous mixes of simulated Xavier and
// Orin platforms) behind a router that owns session placement,
// proxies the session lifecycle to the owning node, probes node
// health, and fails sessions over to survivors when a node dies or
// drains. The router speaks the same HTTP API as a single evserve
// node, so evload and serve clients work against it unchanged.
//
// Usage:
//
//	evcluster [-addr :7734] [-nodes xavier:4,orin:4]
//	          [-policy least-loaded|hash] [-probe 1s]
//	          [-workers 4] [-queue 64] [-drop drop-oldest]
//	          [-mapper rr|nmp] [-parallel 0]
//	          [-batch-max 8] [-batch-window 0]
//	          [-adapt] [-rebalance-gap 0.25] [-rebalance-queue 8]
//	          [-rebalance-cooldown 5s] [-journal]
//
// -adapt enables each node's online control plane (DSFA retuning, and
// NMP remaps under -mapper nmp). -rebalance-gap > 0 additionally lets
// the router consume the same node-load signals to migrate sessions
// off hot nodes mid-run (gracefully; one session per cooldown),
// instead of only reacting to kill/drain.
//
// -journal turns on per-session event journals: every ingest chunk is
// replicated to a deterministic buddy node, so a kill replays the
// un-acknowledged backlog through the survivor instead of shedding it,
// and clients can follow results over SSE (GET
// /v1/sessions/{id}/stream?since=<seq>) across the failover.
//
// Fleet admin (beyond the single-node API):
//
//	GET  /v1/nodes                 per-node health
//	POST /v1/nodes/{name}/kill     simulate a node failure
//	POST /v1/nodes/{name}/drain    graceful drain + migration
//	POST /v1/nodes/{name}/revive   restart a killed node (fresh server)
//	POST /v1/nodes/{name}/undrain  return a draining node to service
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	evedge "evedge"
)

func main() { os.Exit(run(os.Args[1:], os.Stderr)) }

// run parses flags and serves the fleet; it returns the process exit
// status so the flag error paths are testable (2 = bad flag syntax,
// 1 = bad configuration or serve failure).
func run(args []string, stderr io.Writer) int {
	fs := flag.NewFlagSet("evcluster", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr     = fs.String("addr", ":7734", "listen address")
		nodes    = fs.String("nodes", "xavier:2", "fleet spec: comma-separated platform[:count] groups, e.g. xavier:4,orin:4")
		policy   = fs.String("policy", "least-loaded", "session placement policy: least-loaded or hash")
		probe    = fs.Duration("probe", time.Second, "health probe interval (failover latency bound)")
		workers  = fs.Int("workers", 4, "worker pool size per node")
		queue    = fs.Int("queue", 64, "default per-session ingest queue capacity (frames)")
		drop     = fs.String("drop", "drop-oldest", "default queue shed policy: drop-oldest or drop-newest")
		mapper   = fs.String("mapper", "rr", "per-node session placement: rr (round-robin) or nmp (evolutionary search)")
		parallel = fs.Int("parallel", 0, "per-node kernel worker-pool width for tiled sparse kernels and the rulebook cache (<= 1 = serial)")
		batchMax = fs.Int("batch-max", 8, "max compatible invocations coalesced per micro-batch on each node (1 = serialized)")
		batchWin = fs.Duration("batch-window", 0, "how long a node's dispatcher holds work open for more compatible arrivals")
		adapt    = fs.Bool("adapt", false, "enable each node's online control plane (DSFA retuning; NMP remaps under -mapper nmp)")
		journal  = fs.Bool("journal", false, "enable per-session event journals with buddy replication (lossless failover; SSE at /v1/sessions/{id}/stream)")
		gap      = fs.Float64("rebalance-gap", 0, "node-utilization spread that triggers a load-driven session migration (0 disables)")
		queueTh  = fs.Int("rebalance-queue", 0, "pending-invocation spread across nodes that also triggers a migration (0 disables; needs -rebalance-gap > 0)")
		cooldown = fs.Duration("rebalance-cooldown", 5*time.Second, "minimum time between load-driven migrations")
		trace    = fs.String("trace", "", "enable fleet-wide frame-lifecycle tracing and write merged Chrome trace-event JSON here on shutdown (also served live at /v1/trace)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	specs, err := evedge.ParseNodeSpecs(*nodes)
	if err != nil {
		fmt.Fprintln(stderr, "evcluster:", err)
		return 1
	}
	pol, err := evedge.ParsePlacementPolicy(*policy)
	if err != nil {
		fmt.Fprintln(stderr, "evcluster:", err)
		return 1
	}
	node := evedge.DefaultServeConfig()
	node.Workers = *workers
	node.QueueCap = *queue
	node.Mapper = evedge.MapperPolicy(*mapper)
	node.Parallel = *parallel
	if *batchMax < 1 {
		fmt.Fprintf(stderr, "evcluster: -batch-max must be >= 1, got %d\n", *batchMax)
		return 1
	}
	if *batchWin < 0 {
		fmt.Fprintf(stderr, "evcluster: -batch-window must be >= 0, got %s\n", *batchWin)
		return 1
	}
	node.BatchMax = *batchMax
	node.BatchWindow = *batchWin
	node.DropPolicy, err = evedge.ParseDropPolicy(*drop)
	if err != nil {
		fmt.Fprintln(stderr, "evcluster:", err)
		return 1
	}
	if *adapt {
		node.Adapt = evedge.ServeAdaptConfig{
			Retune: true,
			Remap:  node.Mapper == evedge.MapperNMP,
		}
	}
	if *trace != "" {
		node.Trace = evedge.TraceConfig{Enabled: true}
	}
	node.Journal = *journal

	c, err := evedge.NewCluster(evedge.ClusterConfig{
		Nodes:               specs,
		Policy:              pol,
		ProbeInterval:       *probe,
		RebalanceGap:        *gap,
		RebalanceQueueDepth: *queueTh,
		RebalanceCooldown:   *cooldown,
		Node:                node,
	})
	if err != nil {
		fmt.Fprintln(stderr, "evcluster:", err)
		return 1
	}
	hs := &http.Server{Addr: *addr, Handler: c.Handler()}

	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Println("evcluster: shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = hs.Shutdown(ctx)
		if *trace != "" {
			if err := writeTraceFile(c, *trace); err != nil {
				log.Println("evcluster:", err)
			} else {
				log.Printf("evcluster: wrote merged trace to %s", *trace)
			}
		}
		c.Close()
	}()

	log.Printf("evcluster: listening on %s (nodes=[%s], policy=%s, probe=%s, workers/node=%d)",
		*addr, strings.Join(c.NodeNames(), ","), pol, *probe, *workers)
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(stderr, "evcluster:", err)
		return 1
	}
	<-done
	return 0
}

// writeTraceFile dumps the fleet's merged frame-lifecycle trace (every
// node incarnation plus the router's fleet track) as Chrome trace-event
// JSON.
func writeTraceFile(c *evedge.Cluster, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("creating trace file: %w", err)
	}
	if err := c.WriteTrace(f); err != nil {
		f.Close()
		return fmt.Errorf("writing trace: %w", err)
	}
	return f.Close()
}
