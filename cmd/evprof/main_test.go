package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunFlagErrors drives the flag and configuration error paths:
// exit status and message are part of the CLI contract.
func TestRunFlagErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		exit int
		msg  string
	}{
		{"bad flag syntax", []string{"-density", "thick"}, 2, "invalid value"},
		{"unknown flag", []string{"-no-such-flag"}, 2, "flag provided but not defined"},
		{"unknown network", []string{"-nets", "SkyNet"}, 1, "SkyNet"},
		{"empty network name", []string{"-nets", "DOTIE,,SpikeFlowNet"}, 1, "unknown network"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			got := run(tc.args, &stdout, &stderr)
			if got != tc.exit {
				t.Errorf("exit = %d, want %d (stderr: %s)", got, tc.exit, stderr.String())
			}
			if !strings.Contains(stderr.String(), tc.msg) {
				t.Errorf("stderr %q does not mention %q", stderr.String(), tc.msg)
			}
		})
	}
}

// TestRunProfile dumps a one-network profile and checks the table.
func TestRunProfile(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if got := run([]string{"-nets", "DOTIE"}, &stdout, &stderr); got != 0 {
		t.Fatalf("exit = %d, stderr: %s", got, stderr.String())
	}
	for _, want := range []string{"NETWORK", "DOTIE", "best-kernel path"} {
		if !strings.Contains(stdout.String(), want) {
			t.Errorf("profile missing %q:\n%s", want, stdout.String())
		}
	}
}

// TestRunSummary checks the -summary mode prints layer tables instead.
func TestRunSummary(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if got := run([]string{"-nets", "DOTIE", "-summary"}, &stdout, &stderr); got != 0 {
		t.Fatalf("exit = %d, stderr: %s", got, stderr.String())
	}
	if !strings.Contains(stdout.String(), "DOTIE") {
		t.Errorf("summary missing network name:\n%s", stdout.String())
	}
}
