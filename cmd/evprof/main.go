// Command evprof dumps the offline layer-time profile (the ProfileDB
// that substitutes for the paper's TensorRT measurements): one row per
// (layer, device, precision) combination.
//
// Usage:
//
//	evprof [-nets SpikeFlowNet,DOTIE] [-density 0.05] [-dense]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	evedge "evedge"
	"evedge/internal/nn"
	"evedge/internal/perf"
)

func main() {
	var (
		netsFlag = flag.String("nets", evedge.SpikeFlowNet, "comma-separated network names")
		density  = flag.Float64("density", 0.05, "input event-frame density for the sparse path")
		dense    = flag.Bool("dense", false, "profile the dense path only (no kernel selection)")
		summary  = flag.Bool("summary", false, "print per-layer network summaries instead of the profile")
	)
	flag.Parse()

	var nets []*nn.Network
	var dens []float64
	for _, name := range strings.Split(*netsFlag, ",") {
		net, err := nn.ByName(strings.TrimSpace(name))
		if err != nil {
			fmt.Fprintln(os.Stderr, "evprof:", err)
			os.Exit(1)
		}
		nets = append(nets, net)
		dens = append(dens, *density)
	}
	if *summary {
		for _, net := range nets {
			fmt.Println(net.Summary())
		}
		return
	}
	platform := evedge.Xavier()
	model := perf.NewModel(platform)
	if *dense {
		dens = nil
	}
	db, err := perf.BuildProfileDB(model, nets, !*dense, dens)
	if err != nil {
		fmt.Fprintln(os.Stderr, "evprof:", err)
		os.Exit(1)
	}
	fmt.Printf("%-18s %-12s %-6s %-5s %12s\n", "NETWORK", "LAYER", "DEVICE", "PREC", "TIME(us)")
	for _, row := range db.Rows() {
		fmt.Printf("%-18s %-12s %-6s %-5s %12.1f\n",
			row.Network, row.Layer, row.Device, row.Precision, row.TimeUS)
	}
	fmt.Printf("\n%d entries (%s path)\n", db.Len(), map[bool]string{true: "dense", false: "best-kernel"}[*dense])
}
