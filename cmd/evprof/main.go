// Command evprof dumps the offline layer-time profile (the ProfileDB
// that substitutes for the paper's TensorRT measurements): one row per
// (layer, device, precision) combination.
//
// Usage:
//
//	evprof [-nets SpikeFlowNet,DOTIE] [-density 0.05] [-dense]
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	evedge "evedge"
	"evedge/internal/nn"
	"evedge/internal/perf"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

// run parses flags and prints the profile; it returns the process exit
// status so the flag error paths are testable (2 = bad flag syntax,
// 1 = bad configuration or profiling failure).
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("evprof", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		netsFlag = fs.String("nets", evedge.SpikeFlowNet, "comma-separated network names")
		density  = fs.Float64("density", 0.05, "input event-frame density for the sparse path")
		dense    = fs.Bool("dense", false, "profile the dense path only (no kernel selection)")
		summary  = fs.Bool("summary", false, "print per-layer network summaries instead of the profile")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	var nets []*nn.Network
	var dens []float64
	for _, name := range strings.Split(*netsFlag, ",") {
		net, err := nn.ByName(strings.TrimSpace(name))
		if err != nil {
			fmt.Fprintln(stderr, "evprof:", err)
			return 1
		}
		nets = append(nets, net)
		dens = append(dens, *density)
	}
	if *summary {
		for _, net := range nets {
			fmt.Fprintln(stdout, net.Summary())
		}
		return 0
	}
	platform := evedge.Xavier()
	model := perf.NewModel(platform)
	if *dense {
		dens = nil
	}
	db, err := perf.BuildProfileDB(model, nets, !*dense, dens)
	if err != nil {
		fmt.Fprintln(stderr, "evprof:", err)
		return 1
	}
	fmt.Fprintf(stdout, "%-18s %-12s %-6s %-5s %12s\n", "NETWORK", "LAYER", "DEVICE", "PREC", "TIME(us)")
	for _, row := range db.Rows() {
		fmt.Fprintf(stdout, "%-18s %-12s %-6s %-5s %12.1f\n",
			row.Network, row.Layer, row.Device, row.Precision, row.TimeUS)
	}
	fmt.Fprintf(stdout, "\n%d entries (%s path)\n", db.Len(), map[bool]string{true: "dense", false: "best-kernel"}[*dense])
	return 0
}
