// Command evbench regenerates the paper's tables and figures.
//
// Usage:
//
//	evbench [-run all|table1,fig8,...] [-quick] [-seed N] [-dur us] [-list]
//
// Each experiment prints an aligned text table plus the paper's
// reference band, so the output can be compared against the paper (and
// is the source for EXPERIMENTS.md).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	evedge "evedge"
)

func main() {
	var (
		run   = flag.String("run", "all", "comma-separated experiment IDs, or 'all'")
		quick = flag.Bool("quick", false, "reduced fidelity (half-scale camera, smaller search)")
		seed  = flag.Int64("seed", 7, "random seed for all stochastic components")
		dur   = flag.Int64("dur", 2_000_000, "simulated stream duration in microseconds")
		list  = flag.Bool("list", false, "list experiment IDs and exit")
	)
	flag.Parse()

	if *list {
		for _, id := range evedge.Experiments() {
			fmt.Println(id)
		}
		return
	}

	cfg := evedge.FullExperimentConfig()
	if *quick {
		cfg = evedge.QuickExperimentConfig()
	}
	cfg.Seed = *seed
	cfg.DurUS = *dur

	ids := evedge.Experiments()
	if *run != "all" {
		ids = strings.Split(*run, ",")
	}
	for _, id := range ids {
		id = strings.TrimSpace(id)
		start := time.Now()
		res, err := evedge.RunExperiment(id, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "evbench: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Print(evedge.RenderExperiment(res))
		fmt.Printf("(%s in %.1fs)\n\n", id, time.Since(start).Seconds())
	}
}
