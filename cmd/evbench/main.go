// Command evbench regenerates the paper's tables and figures.
//
// Usage:
//
//	evbench [-run all|table1,fig8,...] [-quick] [-seed N] [-dur us]
//	        [-parallel N] [-cpu-list 1,2,4,8] [-list]
//
// Each experiment prints an aligned text table plus the paper's
// reference band, so the output can be compared against the paper (and
// is the source for EXPERIMENTS.md).
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	evedge "evedge"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

// run parses flags and regenerates the selected experiments; it
// returns the process exit status so the flag and experiment-selection
// error paths are testable (2 = bad flag syntax, 1 = bad experiment).
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("evbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		runIDs = fs.String("run", "all", "comma-separated experiment IDs, or 'all'")
		quick  = fs.Bool("quick", false, "reduced fidelity (half-scale camera, smaller search)")
		seed   = fs.Int64("seed", 7, "random seed for all stochastic components")
		dur    = fs.Int64("dur", 2_000_000, "simulated stream duration in microseconds")
		list   = fs.Bool("list", false, "list experiment IDs and exit")

		parallel = fs.Int("parallel", 0, "kernel worker-pool width for the parallel-path experiments (0 = default)")
		cpuList  = fs.String("cpu-list", "", "comma-separated core counts the 'par' experiment sweeps (default 1,2,4,8)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	if *list {
		for _, id := range evedge.Experiments() {
			fmt.Fprintln(stdout, id)
		}
		return 0
	}

	cfg := evedge.FullExperimentConfig()
	if *quick {
		cfg = evedge.QuickExperimentConfig()
	}
	cfg.Seed = *seed
	cfg.DurUS = *dur
	cfg.Parallel = *parallel
	if *cpuList != "" {
		cpus, err := parseCPUList(*cpuList)
		if err != nil {
			fmt.Fprintf(stderr, "evbench: %v\n", err)
			return 1
		}
		cfg.CPUList = cpus
	}

	ids := evedge.Experiments()
	if *runIDs != "all" {
		ids = strings.Split(*runIDs, ",")
	}
	for _, id := range ids {
		id = strings.TrimSpace(id)
		start := time.Now()
		res, err := evedge.RunExperiment(id, cfg)
		if err != nil {
			fmt.Fprintf(stderr, "evbench: %s: %v\n", id, err)
			return 1
		}
		fmt.Fprint(stdout, evedge.RenderExperiment(res))
		fmt.Fprintf(stdout, "(%s in %.1fs)\n\n", id, time.Since(start).Seconds())
	}
	return 0
}

// parseCPUList parses "1,2,4,8" into positive core counts.
func parseCPUList(s string) ([]int, error) {
	var cpus []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad -cpu-list entry %q: %v", part, err)
		}
		if n < 1 {
			return nil, fmt.Errorf("bad -cpu-list entry %d: core counts must be >= 1", n)
		}
		cpus = append(cpus, n)
	}
	return cpus, nil
}
