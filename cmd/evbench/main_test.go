package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunFlagErrors drives the flag and experiment-selection error
// paths through the testable run entry point.
func TestRunFlagErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want int
		errs string
	}{
		{"bad flag syntax", []string{"-nope"}, 2, "flag provided but not defined"},
		{"help", []string{"-h"}, 0, "Usage of evbench"},
		{"unknown experiment", []string{"-run", "fig99"}, 1, "fig99"},
		{"bad cpu-list entry", []string{"-cpu-list", "1,two,4"}, 1, `bad -cpu-list entry "two"`},
		{"zero cpu-list entry", []string{"-cpu-list", "4,0"}, 1, "core counts must be >= 1"},
		{"bad parallel syntax", []string{"-parallel", "x"}, 2, "invalid value"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if got := run(tc.args, &stdout, &stderr); got != tc.want {
				t.Fatalf("run(%v) = %d, want %d (stderr: %s)", tc.args, got, tc.want, stderr.String())
			}
			if tc.errs != "" && !strings.Contains(stderr.String(), tc.errs) {
				t.Fatalf("stderr %q does not mention %q", stderr.String(), tc.errs)
			}
		})
	}
}

// TestRunList checks -list prints the experiment catalog and exits 0.
func TestRunList(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if got := run([]string{"-list"}, &stdout, &stderr); got != 0 {
		t.Fatalf("run(-list) = %d, stderr: %s", got, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{"table1", "fig8", "par", "rulebook"} {
		if !strings.Contains(out, want) {
			t.Fatalf("-list output missing %q:\n%s", want, out)
		}
	}
}

// TestParseCPUList covers the sweep-list parser both ways.
func TestParseCPUList(t *testing.T) {
	cpus, err := parseCPUList(" 1, 2,4,8 ")
	if err != nil {
		t.Fatal(err)
	}
	if want := []int{1, 2, 4, 8}; len(cpus) != len(want) {
		t.Fatalf("parseCPUList = %v, want %v", cpus, want)
	} else {
		for i := range want {
			if cpus[i] != want[i] {
				t.Fatalf("parseCPUList = %v, want %v", cpus, want)
			}
		}
	}
	for _, bad := range []string{"", "a", "1,,2", "-1", "0"} {
		if _, err := parseCPUList(bad); err == nil {
			t.Errorf("parseCPUList(%q) accepted", bad)
		}
	}
}
