package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunFlagErrors drives the flag and scenario-selection error
// paths: exit status and message are part of the CLI contract.
func TestRunFlagErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		exit int
		msg  string
	}{
		{"no scenario", nil, 2, "pick a scenario"},
		{"unknown scenario", []string{"-scenario", "apocalypse"}, 1, `unknown scenario "apocalypse"`},
		{"bad flag syntax", []string{"-seed", "lucky"}, 2, "invalid value"},
		{"unknown flag", []string{"-no-such-flag"}, 2, "flag provided but not defined"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			got := run(tc.args, &stdout, &stderr)
			if got != tc.exit {
				t.Errorf("exit = %d, want %d (stderr: %s)", got, tc.exit, stderr.String())
			}
			if !strings.Contains(stderr.String(), tc.msg) {
				t.Errorf("stderr %q does not mention %q", stderr.String(), tc.msg)
			}
		})
	}
}

// TestRunList requires the acceptance contract: -list names at least
// 8 scenarios, one per line with its target fleet.
func TestRunList(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if got := run([]string{"-list"}, &stdout, &stderr); got != 0 {
		t.Fatalf("exit = %d, stderr: %s", got, stderr.String())
	}
	lines := strings.Split(strings.TrimSpace(stdout.String()), "\n")
	if len(lines) < 8 {
		t.Fatalf("-list printed %d scenarios, want >= 8:\n%s", len(lines), stdout.String())
	}
	for _, want := range []string{"steady", "flash-crowd", "rolling-kill", "drain-rebalance",
		"dynamics-flip", "hot-node-migration", "mixed-platform", "soak"} {
		if !strings.Contains(stdout.String(), want) {
			t.Errorf("-list missing scenario %q", want)
		}
	}
}

// TestRunTrace runs a scenario with -trace and checks the file is
// valid Chrome trace-event JSON and the summary gains stage lines.
func TestRunTrace(t *testing.T) {
	out := filepath.Join(t.TempDir(), "trace.json")
	var stdout, stderr bytes.Buffer
	if got := run([]string{"-scenario", "batched-burst", "-seed", "7", "-trace", out}, &stdout, &stderr); got != 0 {
		t.Fatalf("exit = %d, stderr: %s", got, stderr.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace file is not valid Chrome trace-event JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("trace file has no events")
	}
	for _, want := range []string{"stage queue", "stage exec", "stage frame"} {
		if !strings.Contains(stdout.String(), want) {
			t.Errorf("summary missing %q:\n%s", want, stdout.String())
		}
	}
}

// TestRunScenario runs the smallest scenario end to end through the
// CLI and checks the summary + exit status.
func TestRunScenario(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if got := run([]string{"-scenario", "steady", "-seed", "3"}, &stdout, &stderr); got != 0 {
		t.Fatalf("exit = %d, stderr: %s", got, stderr.String())
	}
	for _, want := range []string{"scenario:    steady", "invariants:  PASS"} {
		if !strings.Contains(stdout.String(), want) {
			t.Errorf("summary missing %q:\n%s", want, stdout.String())
		}
	}
}
