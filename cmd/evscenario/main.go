// Command evscenario runs the deterministic scenario-fleet harness:
// scripted chaos and soak scenarios (session churn, traffic bursts,
// scene-dynamics shifts, node kill/drain/revive) executed against an
// embedded serving fleet on a virtual clock with a seeded RNG, with
// system-wide invariants checked on the recorded timeline.
//
// Usage:
//
//	evscenario -list
//	evscenario -scenario flash-crowd [-seed 7] [-json] [-trace out.json]
//
// The same (scenario, seed) pair always produces a byte-identical
// -json timeline — diff two runs to prove a change is behaviour-
// neutral, or commit one as a golden regression record. Exit status:
// 0 all invariants and scenario expectations hold, 1 a violation or
// run error, 2 bad flags.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	evedge "evedge"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("evscenario", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		scenario = fs.String("scenario", "", "scenario to run (see -list)")
		list     = fs.Bool("list", false, "list the scenario library and exit")
		seed     = fs.Int64("seed", 7, "RNG seed; same seed => byte-identical -json timeline")
		asJSON   = fs.Bool("json", false, "emit the full recorded timeline as JSON")
		trace    = fs.String("trace", "", "force tracing on and write the run's Chrome trace-event JSON here (byte-identical per scenario+seed)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	if *list {
		for _, name := range evedge.ScenarioNames() {
			sc, err := evedge.ScenarioByName(name)
			if err != nil {
				fmt.Fprintln(stderr, "evscenario:", err)
				return 1
			}
			target := sc.Nodes
			if target == "" {
				target = "single-server"
			}
			fmt.Fprintf(stdout, "%-20s %-18s %s\n", name, target, sc.Notes)
		}
		return 0
	}
	if *scenario == "" {
		fmt.Fprintln(stderr, "evscenario: pick a scenario with -scenario, or -list to see them")
		return 2
	}

	sc, err := evedge.ScenarioByName(*scenario)
	if err != nil {
		fmt.Fprintln(stderr, "evscenario:", err)
		return 1
	}
	var res *evedge.ScenarioResult
	if *trace != "" {
		f, err := os.Create(*trace)
		if err != nil {
			fmt.Fprintln(stderr, "evscenario:", err)
			return 1
		}
		res, err = evedge.RunScenarioTraced(sc, *seed, f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(stderr, "evscenario:", err)
			return 1
		}
	} else {
		res, err = evedge.RunScenario(sc, *seed)
		if err != nil {
			fmt.Fprintln(stderr, "evscenario:", err)
			return 1
		}
	}
	violations := evedge.CheckScenario(res)
	violations = append(violations, evedge.CheckScenarioExpect(sc, res)...)

	if *asJSON {
		out, err := res.Encode()
		if err != nil {
			fmt.Fprintln(stderr, "evscenario:", err)
			return 1
		}
		fmt.Fprintln(stdout, string(out))
	} else {
		f := res.Final
		fmt.Fprintf(stdout, "scenario:    %s (seed %d)\n", res.Scenario, res.Seed)
		fmt.Fprintf(stdout, "             %s\n", sc.Notes)
		fmt.Fprintf(stdout, "virtual run: %d ticks x %.0f ms (%.1f s), %d timeline entries\n",
			res.Ticks, float64(res.TickUS)/1000, float64(res.Ticks)*float64(res.TickUS)*1e-6, len(res.Timeline))
		fmt.Fprintf(stdout, "sessions:    %d served, %d session finals recorded\n", f.Totals.Sessions, len(res.Sessions))
		fmt.Fprintf(stdout, "frames:      %d in, %d done, %d queue-dropped, %d dsfa-dropped, %d shed on failover\n",
			f.Totals.FramesIn, f.Totals.RawFramesDone, f.Totals.FramesDropped, f.Totals.FramesDroppedDSFA, f.ShedFrames)
		fmt.Fprintf(stdout, "adaptation:  %d retunes, %d remaps\n", f.Totals.Retunes, f.Totals.Remaps)
		fmt.Fprintf(stdout, "fleet:       %d failovers, %d migrations, %d lost\n", f.Failovers, f.Migrations, f.Lost)
		for _, n := range f.Nodes {
			fmt.Fprintf(stdout, "  node %-10s %-8s residual %d+%d frames\n",
				n.Name, n.State, n.ResidualQueued+n.RetiredQueued, n.ResidualAgg+n.RetiredAgg)
		}
		for _, s := range res.Stages {
			fmt.Fprintf(stdout, "  stage %-6s %7d samples, mean %8.0f us, p50 %8.0f us, p99 %8.0f us\n",
				s.Stage, s.Count, s.MeanUS, s.P50US, s.P99US)
		}
		if len(violations) == 0 {
			fmt.Fprintf(stdout, "invariants:  PASS (conservation, monotonic totals, drain-lossless, cooldown)\n")
		}
	}
	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintln(stderr, "evscenario: FAIL", v)
		}
		return 1
	}
	return 0
}
