package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunFlagErrors drives the flag and configuration error paths:
// exit status and message are part of the CLI contract.
func TestRunFlagErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		exit int
		msg  string
	}{
		{"bad flag syntax", []string{"-seed", "lucky"}, 2, "invalid value"},
		{"unknown flag", []string{"-no-such-flag"}, 2, "flag provided but not defined"},
		{"unknown platform", []string{"-platform", "tpu"}, 1, "tpu"},
		{"unknown network", []string{"-nets", "SkyNet"}, 1, "SkyNet"},
		{"unknown objective", []string{"-nets", "DOTIE", "-objective", "vibes"}, 1, `unknown objective "vibes"`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			got := run(tc.args, &stdout, &stderr)
			if got != tc.exit {
				t.Errorf("exit = %d, want %d (stderr: %s)", got, tc.exit, stderr.String())
			}
			if !strings.Contains(stderr.String(), tc.msg) {
				t.Errorf("stderr %q does not mention %q", stderr.String(), tc.msg)
			}
		})
	}
}

// TestRunMap maps a single small network end to end and checks the
// assignment report and Gantt chart appear.
func TestRunMap(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if got := run([]string{"-nets", "DOTIE", "-seed", "3"}, &stdout, &stderr); got != 0 {
		t.Fatalf("exit = %d, stderr: %s", got, stderr.String())
	}
	for _, want := range []string{"platform: jetson-xavier-agx", "searched:", "latency:", "task 0 (DOTIE)"} {
		if !strings.Contains(stdout.String(), want) {
			t.Errorf("output missing %q:\n%s", want, stdout.String())
		}
	}
}

// TestRunDOT checks the -dot mode emits a Graphviz digraph.
func TestRunDOT(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if got := run([]string{"-nets", "DOTIE", "-seed", "3", "-dot"}, &stdout, &stderr); got != 0 {
		t.Fatalf("exit = %d, stderr: %s", got, stderr.String())
	}
	if !strings.Contains(stdout.String(), "digraph") {
		t.Errorf("-dot output is not Graphviz DOT:\n%s", stdout.String())
	}
}
