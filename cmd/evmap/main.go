// Command evmap runs the Network Mapper on a workload and prints the
// resulting per-layer assignment, a device-occupancy Gantt chart, and
// optionally the mapped graph in Graphviz DOT format.
//
// Usage:
//
//	evmap [-nets Fusion-FlowNet,HALSIE,DOTIE,HidalgoDepth]
//	      [-platform xavier|orin] [-objective latency|energy]
//	      [-fp] [-seed N] [-dot]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"evedge/internal/hw"
	"evedge/internal/nmp"
	"evedge/internal/nn"
	"evedge/internal/perf"
	"evedge/internal/taskgraph"
)

func main() {
	var (
		netsFlag = flag.String("nets", strings.Join([]string{
			nn.FusionFlowNet, nn.HALSIE, nn.DOTIE, nn.HidalgoDepth}, ","),
			"comma-separated workload networks")
		platName  = flag.String("platform", "xavier", "platform preset (xavier, orin)")
		objective = flag.String("objective", "latency", "search objective: latency or energy")
		fp        = flag.Bool("fp", false, "full-precision-only search (Ev-Edge-NMP-FP)")
		seed      = flag.Int64("seed", 11, "search seed")
		density   = flag.Float64("density", 0.05, "input event-frame density per task")
		dot       = flag.Bool("dot", false, "emit the mapped graph in Graphviz DOT")
	)
	flag.Parse()

	platform, err := hw.PlatformByName(*platName)
	if err != nil {
		fail(err)
	}
	var nets []*nn.Network
	var dens []float64
	for _, name := range strings.Split(*netsFlag, ",") {
		net, err := nn.ByName(strings.TrimSpace(name))
		if err != nil {
			fail(err)
		}
		nets = append(nets, net)
		dens = append(dens, *density)
	}
	model := perf.NewModel(platform)
	db, err := perf.BuildProfileDB(model, nets, true, dens)
	if err != nil {
		fail(err)
	}
	cfg := nmp.DefaultConfig()
	cfg.Seed = *seed
	cfg.FullPrecisionOnly = *fp
	switch *objective {
	case "latency":
		cfg.Objective = nmp.MinLatency
	case "energy":
		cfg.Objective = nmp.MinEnergy
	default:
		fail(fmt.Errorf("unknown objective %q", *objective))
	}
	mapper, err := nmp.NewMapper(db, model, cfg)
	if err != nil {
		fail(err)
	}
	res, err := mapper.Search()
	if err != nil {
		fail(err)
	}

	fmt.Printf("platform: %s, objective: %s, FP-only: %v\n", platform.Name, *objective, *fp)
	fmt.Printf("searched: %d evaluations (%d cache hits)\n", res.Evaluations, res.CacheHits)
	fmt.Printf("latency:  %.2f ms (feasible=%v), energy %.2f J\n\n",
		res.LatencyUS/1000, res.Feasible, res.EnergyJ)

	g, err := taskgraph.Build(db, model, res.Assignment)
	if err != nil {
		fail(err)
	}
	if *dot {
		fmt.Print(g.DOT())
		return
	}
	fmt.Print(g.MappingTable())

	// Re-run the schedule recording the timeline for the Gantt chart.
	sched, err := g.Run(platform)
	if err != nil {
		fail(err)
	}
	fmt.Println()
	var spans []hw.Span
	for _, n := range g.Nodes {
		name := "UM"
		if n.Kind == taskgraph.ComputeNode {
			name = platform.Devices[n.Dev].Name
		}
		spans = append(spans, hw.Span{
			Device: name, Tag: n.Label,
			Start: sched.NodeStart[n.ID], End: sched.NodeEnd[n.ID],
		})
	}
	fmt.Print(hw.Gantt(platform, spans, 100))
	fmt.Println()
	for t, lat := range sched.TaskLatencyUS {
		fmt.Printf("  task %d (%s): %.2f ms, ΔA %.3f (budget %.3f)\n",
			t, nets[t].Name, lat/1000, res.Deltas[t], mapper.Budgets()[t])
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "evmap:", err)
	os.Exit(1)
}
