// Command evmap runs the Network Mapper on a workload and prints the
// resulting per-layer assignment, a device-occupancy Gantt chart, and
// optionally the mapped graph in Graphviz DOT format.
//
// Usage:
//
//	evmap [-nets Fusion-FlowNet,HALSIE,DOTIE,HidalgoDepth]
//	      [-platform xavier|orin] [-objective latency|energy]
//	      [-fp] [-seed N] [-dot]
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"evedge/internal/hw"
	"evedge/internal/nmp"
	"evedge/internal/nn"
	"evedge/internal/perf"
	"evedge/internal/taskgraph"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

// run parses flags and maps the workload; it returns the process exit
// status so the flag error paths are testable (2 = bad flag syntax,
// 1 = bad configuration or search failure).
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("evmap", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		netsFlag = fs.String("nets", strings.Join([]string{
			nn.FusionFlowNet, nn.HALSIE, nn.DOTIE, nn.HidalgoDepth}, ","),
			"comma-separated workload networks")
		platName  = fs.String("platform", "xavier", "platform preset (xavier, orin)")
		objective = fs.String("objective", "latency", "search objective: latency or energy")
		fp        = fs.Bool("fp", false, "full-precision-only search (Ev-Edge-NMP-FP)")
		seed      = fs.Int64("seed", 11, "search seed")
		density   = fs.Float64("density", 0.05, "input event-frame density per task")
		dot       = fs.Bool("dot", false, "emit the mapped graph in Graphviz DOT")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "evmap:", err)
		return 1
	}

	platform, err := hw.PlatformByName(*platName)
	if err != nil {
		return fail(err)
	}
	var nets []*nn.Network
	var dens []float64
	for _, name := range strings.Split(*netsFlag, ",") {
		net, err := nn.ByName(strings.TrimSpace(name))
		if err != nil {
			return fail(err)
		}
		nets = append(nets, net)
		dens = append(dens, *density)
	}
	model := perf.NewModel(platform)
	db, err := perf.BuildProfileDB(model, nets, true, dens)
	if err != nil {
		return fail(err)
	}
	cfg := nmp.DefaultConfig()
	cfg.Seed = *seed
	cfg.FullPrecisionOnly = *fp
	switch *objective {
	case "latency":
		cfg.Objective = nmp.MinLatency
	case "energy":
		cfg.Objective = nmp.MinEnergy
	default:
		return fail(fmt.Errorf("unknown objective %q", *objective))
	}
	mapper, err := nmp.NewMapper(db, model, cfg)
	if err != nil {
		return fail(err)
	}
	res, err := mapper.Search()
	if err != nil {
		return fail(err)
	}

	fmt.Fprintf(stdout, "platform: %s, objective: %s, FP-only: %v\n", platform.Name, *objective, *fp)
	fmt.Fprintf(stdout, "searched: %d evaluations (%d cache hits)\n", res.Evaluations, res.CacheHits)
	fmt.Fprintf(stdout, "latency:  %.2f ms (feasible=%v), energy %.2f J\n\n",
		res.LatencyUS/1000, res.Feasible, res.EnergyJ)

	g, err := taskgraph.Build(db, model, res.Assignment)
	if err != nil {
		return fail(err)
	}
	if *dot {
		fmt.Fprint(stdout, g.DOT())
		return 0
	}
	fmt.Fprint(stdout, g.MappingTable())

	// Re-run the schedule recording the timeline for the Gantt chart.
	sched, err := g.Run(platform)
	if err != nil {
		return fail(err)
	}
	fmt.Fprintln(stdout)
	var spans []hw.Span
	for _, n := range g.Nodes {
		name := "UM"
		if n.Kind == taskgraph.ComputeNode {
			name = platform.Devices[n.Dev].Name
		}
		spans = append(spans, hw.Span{
			Device: name, Tag: n.Label,
			Start: sched.NodeStart[n.ID], End: sched.NodeEnd[n.ID],
		})
	}
	fmt.Fprint(stdout, hw.Gantt(platform, spans, 100))
	fmt.Fprintln(stdout)
	for t, lat := range sched.TaskLatencyUS {
		fmt.Fprintf(stdout, "  task %d (%s): %.2f ms, ΔA %.3f (budget %.3f)\n",
			t, nets[t].Name, lat/1000, res.Deltas[t], mapper.Budgets()[t])
	}
	return 0
}
