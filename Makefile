GO      ?= go
BIN     := bin
CMDS    := evedge evserve evcluster evload evbench evmap evprof evtrace

.PHONY: build test race lint bench serve cluster clean

build:
	@mkdir -p $(BIN)
	@for c in $(CMDS); do $(GO) build -o $(BIN)/$$c ./cmd/$$c || exit 1; done
	@echo "built: $(addprefix $(BIN)/,$(CMDS))"

test:
	$(GO) build ./...
	$(GO) test ./...

race:
	$(GO) test -race ./...

lint:
	@fmt=$$(gofmt -l .); if [ -n "$$fmt" ]; then echo "gofmt needed:"; echo "$$fmt"; exit 1; fi
	$(GO) vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .

serve: build
	./$(BIN)/evserve -addr :7733

cluster: build
	./$(BIN)/evcluster -addr :7734 -nodes xavier:2,orin:2

clean:
	rm -rf $(BIN)
