GO      ?= go
BIN     := bin
CMDS    := evedge evserve evcluster evscenario evload evbench evmap evprof evtrace

# Package/target pairs for the fuzz smoke (CI runs `make fuzz`).
FUZZ_TARGETS := \
	./internal/events:FuzzReadBinary \
	./internal/events:FuzzReadText \
	./internal/sparse:FuzzReadFrame \
	./internal/sparse:FuzzReadFrames \
	./internal/serve:FuzzDecodeChunk \
	./internal/serve:FuzzDecodeJournalEntry
FUZZTIME ?= 10s

.PHONY: build test race lint bench bench-json bench-smoke serve cluster scenarios fuzz cover clean

build:
	@mkdir -p $(BIN)
	@for c in $(CMDS); do $(GO) build -o $(BIN)/$$c ./cmd/$$c || exit 1; done
	@echo "built: $(addprefix $(BIN)/,$(CMDS))"

test:
	$(GO) build ./...
	$(GO) test ./...

race:
	$(GO) test -race ./...

lint:
	@fmt=$$(gofmt -l .); if [ -n "$$fmt" ]; then echo "gofmt needed:"; echo "$$fmt"; exit 1; fi
	$(GO) vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

bench:
	$(GO) test -bench=. -benchtime=1x -benchmem -run=^$$ . ./internal/sparse ./internal/e2sf ./internal/serve

# Serialized-vs-batched serving comparison plus per-stage allocation
# profile: emits BENCH_serve.json (virtual throughput, p50/p99, batch
# occupancy), BENCH_alloc.json (allocs/op, bytes/op, ns/op per
# hot-path stage) and BENCH_par.json (serial-vs-tiled kernel scaling,
# rulebook-cache hit rates, parallel byte-identity) — the
# perf-trajectory artifacts CI uploads on every run.
bench-json:
	BENCH_JSON=$(abspath BENCH_serve.json) $(GO) test -run '^TestServeBenchJSON$$' -count=1 ./internal/serve
	BENCH_OBS_JSON=$(abspath BENCH_obs.json) $(GO) test -run '^TestObsBenchJSON$$' -count=1 ./internal/serve
	BENCH_ALLOC_JSON=$(abspath BENCH_alloc.json) $(GO) test -run '^TestAllocBenchJSON$$' -count=1 ./internal/serve
	BENCH_PAR_JSON=$(abspath BENCH_par.json) $(GO) test -run '^TestParBenchJSON$$' -count=1 -timeout 30m ./internal/harness

# Allocation regression gate: re-measure every hot-path stage and fail
# if any stage's allocs/op regressed >10% against the committed
# BENCH_alloc.json. Run before bench-json (which overwrites the
# baseline in the working tree).
bench-smoke:
	BENCH_ALLOC_BASELINE=$(abspath BENCH_alloc.json) $(GO) test -run '^TestAllocSmoke$$' -count=1 -v ./internal/serve

# Run the deterministic scenario suite (the chaos/soak regression bed)
# plus the kernel worker pool under the race detector, at two scheduler
# widths: a narrow host (2) forces pool shards to queue behind each
# other, a wide one (8) maximizes true overlap.
scenarios:
	GOMAXPROCS=2 $(GO) test -race -count=1 ./internal/harness/... ./internal/par/... ./cmd/evscenario/...
	GOMAXPROCS=8 $(GO) test -race -count=1 ./internal/harness/... ./internal/par/... ./cmd/evscenario/...

# Short coverage-guided fuzz pass over every codec/decoder target.
fuzz:
	@for t in $(FUZZ_TARGETS); do \
		pkg=$${t%%:*}; target=$${t##*:}; \
		echo "fuzzing $$pkg $$target ($(FUZZTIME))"; \
		$(GO) test -run '^$$' -fuzz "^$${target}\$$" -fuzztime $(FUZZTIME) $$pkg || exit 1; \
	done

cover:
	$(GO) test -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out | tail -1

serve: build
	./$(BIN)/evserve -addr :7733

cluster: build
	./$(BIN)/evcluster -addr :7734 -nodes xavier:2,orin:2

clean:
	rm -rf $(BIN)
