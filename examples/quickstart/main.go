// Quickstart: simulate an event camera, run one network through the
// full Ev-Edge pipeline, and compare against the all-GPU baseline.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	evedge "evedge"
)

func main() {
	// Load a pretrained-network description from the zoo (paper
	// Table 1): SpikeFlowNet, a hybrid SNN-ANN optical-flow network.
	net, err := evedge.LoadNetwork(evedge.SpikeFlowNet)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network: %s — %d layers (%s), input %s framing on %q\n",
		net.Name, len(net.Layers), net.TypeDesc, net.Input.Framing, net.Input.Preset)

	// Run 1.5 seconds of the IndoorFlying2-like sequence through the
	// baseline and through the full Ev-Edge pipeline. The pipeline
	// simulates the camera internally when no stream is provided.
	var baseline *evedge.PipelineReport
	for _, level := range []evedge.Level{evedge.LevelBaseline, evedge.LevelNMP} {
		rep, err := evedge.RunPipeline(evedge.PipelineConfig{
			Net:   net,
			Level: level,
			Scale: evedge.HalfScale, // half resolution keeps the demo fast
			DurUS: 1_500_000,
			Seed:  7,
		})
		if err != nil {
			log.Fatal(err)
		}
		if level == evedge.LevelBaseline {
			baseline = rep
		}
		fmt.Printf("\n%s:\n", rep.Level)
		fmt.Printf("  frames %d, invocations %d, merge ratio %.2f\n",
			rep.RawFrames, rep.Invocations, rep.MergeRatio)
		fmt.Printf("  mean latency %.2f ms, energy %.1f J\n",
			rep.MeanLatencyUS/1000, rep.EnergyJ)
		fmt.Printf("  accuracy %.2f %s (baseline %.2f)\n",
			rep.Accuracy, net.Metric.Name, net.BaselineAccuracy)
		if level != evedge.LevelBaseline {
			fmt.Printf("  => %.2fx faster, %.2fx less energy than all-GPU\n",
				baseline.MeanLatencyUS/rep.MeanLatencyUS, baseline.EnergyJ/rep.EnergyJ)
		}
	}
}
