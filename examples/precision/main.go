// Precision-accuracy tradeoff: sweep the accuracy-degradation bound ΔA
// for HidalgoDepth and watch the Network Mapper trade INT8 coverage
// (and therefore latency) against accuracy — the constraint mechanics
// of the paper's Eq. 2.
//
//	go run ./examples/precision
package main

import (
	"fmt"
	"log"

	evedge "evedge"
	"evedge/internal/nn"
	"evedge/internal/quant"
)

func main() {
	net, err := evedge.LoadNetwork(evedge.HidalgoDepth)
	if err != nil {
		log.Fatal(err)
	}
	platform := evedge.Xavier()
	table2 := quant.Table2Delta(net.Name)
	fmt.Printf("network: %s, metric %s (baseline %.2f), Table 2 budget ΔA=%.3f\n\n",
		net.Name, net.Metric.Name, net.BaselineAccuracy, table2)

	fmt.Printf("%-12s %12s %10s %10s %12s\n", "budget", "latency(ms)", "INT8", "ΔA", "accuracy")
	for _, scale := range []float64{0.25, 0.5, 1.0, 2.0} {
		cfg := evedge.DefaultMapperConfig()
		cfg.Seed = 23
		mapper, err := evedge.NewMapper(platform, []*evedge.Network{net}, []float64{0.17}, cfg)
		if err != nil {
			log.Fatal(err)
		}
		budget := table2 * scale
		if err := mapper.SetBudgets([]float64{budget}); err != nil {
			log.Fatal(err)
		}
		res, err := mapper.Search()
		if err != nil {
			log.Fatal(err)
		}
		int8Count := 0
		for _, p := range res.Assignment.Prec[0] {
			if p == nn.INT8 {
				int8Count++
			}
		}
		fmt.Printf("%.3f (%.2fx) %12.2f %7d/%2d %10.3f %12.2f\n",
			budget, scale, res.LatencyUS/1000, int8Count, len(net.Layers),
			res.Deltas[0], quant.EvEdgeAccuracy(net, res.Deltas[0]))
	}
	fmt.Println("\nLooser bounds admit more INT8 layers and lower latency; the")
	fmt.Println("paper's Ev-Edge-NMP-FP variant is the zero-quantization extreme.")
}
