// Multi-task mapping: concurrently execute the paper's mixed SNN-ANN
// workload (Fusion-FlowNet + HALSIE + DOTIE + HidalgoDepth) and compare
// the Network Mapper's evolutionary search against the round-robin
// scheduling baselines — the paper's Fig. 9 scenario.
//
//	go run ./examples/multitask
package main

import (
	"fmt"
	"log"

	evedge "evedge"
	"evedge/internal/nmp"
	"evedge/internal/nn"
)

func main() {
	names := []string{evedge.FusionFlowNet, evedge.HALSIE, evedge.DOTIE, evedge.HidalgoDepth}
	var nets []*nn.Network
	// Representative event-frame densities per task (from each
	// network's own sequence).
	densities := []float64{0.006, 0.20, 0.005, 0.17}
	for _, n := range names {
		net, err := evedge.LoadNetwork(n)
		if err != nil {
			log.Fatal(err)
		}
		nets = append(nets, net)
	}

	platform := evedge.Xavier()
	cfg := evedge.DefaultMapperConfig()
	cfg.Seed = 17
	mapper, err := evedge.NewMapper(platform, nets, densities, cfg)
	if err != nil {
		log.Fatal(err)
	}

	res, err := mapper.Search()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("evolutionary search: %d evaluations (%d cache hits), feasible=%v\n",
		res.Evaluations, res.CacheHits, res.Feasible)
	fmt.Printf("NMP latency: %.2f ms\n\n", res.LatencyUS/1000)

	// Per-task mapping summary.
	for t, net := range nets {
		devCount := map[string]int{}
		int8Count := 0
		for l := range net.Layers {
			dev := platform.Devices[res.Assignment.Device[t][l]]
			devCount[dev.Name]++
			if res.Assignment.Prec[t][l] == nn.INT8 {
				int8Count++
			}
		}
		fmt.Printf("  %-16s devices=%v INT8 layers=%d/%d ΔA=%.3f (budget %.3f)\n",
			net.Name, devCount, int8Count, len(net.Layers), res.Deltas[t], mapper.Budgets()[t])
	}

	// Round-robin baselines.
	fmt.Println()
	rrn, err := nmp.RRNetwork(nets, platform)
	if err != nil {
		log.Fatal(err)
	}
	rrnRes, err := mapper.EvaluatePolicy(rrn)
	if err != nil {
		log.Fatal(err)
	}
	rrl, err := nmp.RRLayer(nets, platform)
	if err != nil {
		log.Fatal(err)
	}
	rrlRes, err := mapper.EvaluatePolicy(rrl)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("RR-Network latency: %.2f ms (NMP is %.2fx faster)\n",
		rrnRes.LatencyUS/1000, rrnRes.LatencyUS/res.LatencyUS)
	fmt.Printf("RR-Layer   latency: %.2f ms (NMP is %.2fx faster)\n",
		rrlRes.LatencyUS/1000, rrlRes.LatencyUS/res.LatencyUS)
}
