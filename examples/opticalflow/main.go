// Optical-flow streaming with burst handling: runs Adaptive-SpikeNet
// on the aggressive IndoorFlying2-like sequence at every optimization
// level and shows how DSFA absorbs activity bursts by trading temporal
// granularity (merge ratio) for backlog relief — the paper's Sec. 4.2
// scenario.
//
//	go run ./examples/opticalflow
package main

import (
	"fmt"
	"log"

	evedge "evedge"
	"evedge/internal/scene"
)

func main() {
	net, err := evedge.LoadNetwork(evedge.AdaptiveSpikeNet)
	if err != nil {
		log.Fatal(err)
	}
	// Force the bursty sequence regardless of the network's default.
	stream, err := evedge.GenerateSequence(scene.IndoorFlying2, evedge.HalfScale, 11, 2_000_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sequence: %s\n", stream.Summarize())
	fmt.Printf("burst profile (events per 100 ms): %v\n\n", stream.DensitySeries(100_000))

	fmt.Printf("%-14s %10s %10s %8s %8s %8s\n",
		"level", "mean(ms)", "p99(ms)", "merge", "drops", "energy(J)")
	var base float64
	for _, level := range []evedge.Level{
		evedge.LevelBaseline, evedge.LevelE2SF, evedge.LevelDSFA, evedge.LevelNMP,
	} {
		rep, err := evedge.RunPipeline(evedge.PipelineConfig{
			Net:    net,
			Level:  level,
			Stream: stream,
			Scale:  evedge.HalfScale,
			DurUS:  2_000_000,
			Seed:   11,
		})
		if err != nil {
			log.Fatal(err)
		}
		if level == evedge.LevelBaseline {
			base = rep.MeanLatencyUS
		}
		fmt.Printf("%-14s %10.2f %10.2f %8.2f %8d %8.1f   (%.2fx)\n",
			rep.Level, rep.MeanLatencyUS/1000, rep.P99LatencyUS/1000,
			rep.MergeRatio, rep.DroppedFrames, rep.EnergyJ, base/rep.MeanLatencyUS)
	}
	fmt.Println("\nDuring the maneuvers the count-based framing emits frames faster")
	fmt.Println("than the hardware drains them; DSFA merges frames within the MtTh/")
	fmt.Println("MdTh thresholds so the backlog clears at bounded accuracy cost.")
}
