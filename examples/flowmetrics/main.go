// Flow metrics against simulator ground truth: because the scene is
// procedural, the true optical flow at every pixel is known (the role
// MVSEC's LiDAR/IMU ground truth plays in the paper). This example
// computes the AEE metric — dense and event-masked — for increasingly
// degraded flow estimates, the same metric Table 2 reports for the
// optical-flow networks.
//
//	go run ./examples/flowmetrics
package main

import (
	"fmt"
	"log"
	"math/rand"

	"evedge/internal/e2sf"
	"evedge/internal/flow"
	"evedge/internal/scene"
)

func main() {
	// Build the IndoorFlying1-like world directly so we can query its
	// ground truth.
	seq, err := scene.NewSequence(scene.IndoorFlying1, scene.Half, 5)
	if err != nil {
		log.Fatal(err)
	}
	stream, err := seq.Generate(300_000)
	if err != nil {
		log.Fatal(err)
	}
	// E2SF the window the flow spans, to mask evaluation to event
	// pixels (the EV-FlowNet protocol).
	conv, err := e2sf.New(e2sf.Config{Width: stream.Width, Height: stream.Height, NumBins: 1})
	if err != nil {
		log.Fatal(err)
	}
	frames, _, err := conv.Convert(stream, 0, 25_000)
	if err != nil {
		log.Fatal(err)
	}
	frame := frames[0]

	// Ground truth over the first 25 ms window. (NewSequence wraps a
	// World renderer; rebuild it to access GroundTruthFlow.)
	world := &scene.World{
		Texture: scene.NewTexture(stream.Width, stream.Height, 0.55, 105),
		Path: &scene.SmoothPath{
			VX: 18, VY: 6, AmpX: 8, AmpY: 5, FreqX: 0.4, FreqY: 0.3,
			RotAmp: 0.02, RotFreq: 0.25,
		},
	}
	gt := world.GroundTruthFlow(stream.Width, stream.Height, 0, 25_000)
	fmt.Printf("sequence: %s, %.0f events in window, %.2f%% active pixels\n",
		stream.Summarize(), frame.EventCount(), frame.Density()*100)
	fmt.Printf("ground-truth mean flow magnitude: %.3f px / 25 ms\n\n", gt.MeanMagnitude())

	// Evaluate estimates of decreasing quality: the ground truth
	// itself, then versions with increasing Gaussian noise.
	r := rand.New(rand.NewSource(9))
	fmt.Printf("%-22s %10s %10s\n", "estimate", "AEE", "maskedAEE")
	for _, sigma := range []float64{0, 0.1, 0.5, 1.0} {
		pred := scene.NewFlowField(gt.W, gt.H)
		copy(pred.U, gt.U)
		copy(pred.V, gt.V)
		for i := range pred.U {
			pred.U[i] += float32(r.NormFloat64() * sigma)
			pred.V[i] += float32(r.NormFloat64() * sigma)
		}
		aee, err := flow.AEE(pred, gt)
		if err != nil {
			log.Fatal(err)
		}
		masked, err := flow.MaskedAEE(pred, gt, frame)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("gt + noise σ=%-9.1f %10.3f %10.3f\n", sigma, aee, masked)
	}
	fmt.Println("\nAEE grows with estimate noise; the masked variant evaluates only")
	fmt.Println("where events fired, as the optical-flow networks in Table 2 do.")
}
