package evedge_test

import (
	"strings"
	"testing"

	evedge "evedge"
)

func TestNetworkRegistry(t *testing.T) {
	if len(evedge.Networks()) != 7 {
		t.Fatalf("zoo size %d", len(evedge.Networks()))
	}
	if len(evedge.Table1Networks()) != 6 {
		t.Fatalf("table1 size %d", len(evedge.Table1Networks()))
	}
	for _, name := range evedge.Networks() {
		net, err := evedge.LoadNetwork(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := net.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if _, err := evedge.LoadNetwork("nope"); err == nil {
		t.Fatal("unknown network accepted")
	}
}

func TestXavierAndSequences(t *testing.T) {
	p := evedge.Xavier()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(evedge.Presets()) == 0 {
		t.Fatal("no presets")
	}
	s, err := evedge.GenerateSequence(evedge.Presets()[0], evedge.HalfScale, 1, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() == 0 {
		t.Fatal("empty sequence")
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := evedge.GenerateSequence("nope", evedge.HalfScale, 1, 100_000); err == nil {
		t.Fatal("unknown preset accepted")
	}
}

func TestPublicPlatformsAndCluster(t *testing.T) {
	if got := evedge.Platforms(); len(got) != 2 {
		t.Fatalf("platforms = %v", got)
	}
	orin := evedge.Orin()
	if err := orin.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, name := range evedge.Platforms() {
		if _, err := evedge.PlatformByName(name); err != nil {
			t.Fatalf("PlatformByName(%q): %v", name, err)
		}
	}
	if _, err := evedge.PlatformByName("tpu"); err == nil {
		t.Fatal("unknown platform accepted")
	}

	specs, err := evedge.ParseNodeSpecs("xavier:1,orin:1")
	if err != nil {
		t.Fatalf("ParseNodeSpecs: %v", err)
	}
	pol, err := evedge.ParsePlacementPolicy("hash")
	if err != nil || pol != evedge.PolicyHash {
		t.Fatalf("ParsePlacementPolicy: %v, %v", pol, err)
	}
	c, err := evedge.NewCluster(evedge.ClusterConfig{Nodes: specs, ProbeInterval: -1})
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	defer c.Close()
	snap, err := c.CreateSession(evedge.ServeSessionConfig{Network: evedge.DOTIE, Level: 1})
	if err != nil {
		t.Fatalf("CreateSession: %v", err)
	}
	if snap.Node == "" || !strings.HasPrefix(snap.ID, "c") {
		t.Fatalf("cluster snapshot: %+v", snap)
	}
	h := c.Health()
	if h.Status != "ok" || h.NodesUp != 2 || h.SessionsActive != 1 {
		t.Fatalf("cluster health: %+v", h)
	}
	if _, err := c.CloseSession(snap.ID); err != nil {
		t.Fatalf("CloseSession: %v", err)
	}
}

func TestPublicPipelineRun(t *testing.T) {
	net, err := evedge.LoadNetwork(evedge.DOTIE)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := evedge.RunPipeline(evedge.PipelineConfig{
		Net: net, Level: evedge.LevelE2SF,
		Scale: evedge.HalfScale, DurUS: 300_000, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.MeanLatencyUS <= 0 || rep.RawFrames == 0 {
		t.Fatalf("degenerate report %+v", rep)
	}
}

func TestPublicMapper(t *testing.T) {
	net, err := evedge.LoadNetwork(evedge.DOTIE)
	if err != nil {
		t.Fatal(err)
	}
	cfg := evedge.DefaultMapperConfig()
	cfg.Population = 8
	cfg.Generations = 6
	mp, err := evedge.NewMapper(evedge.Xavier(), []*evedge.Network{net}, []float64{0.01}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := mp.Search()
	if err != nil {
		t.Fatal(err)
	}
	if res.LatencyUS <= 0 || res.Assignment == nil {
		t.Fatalf("degenerate search result %+v", res)
	}
}

func TestPublicExperiments(t *testing.T) {
	ids := evedge.Experiments()
	if len(ids) != 12 {
		t.Fatalf("experiments %d want 12 (10 paper + par + rulebook)", len(ids))
	}
	res, err := evedge.RunExperiment("table1", evedge.QuickExperimentConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(evedge.RenderExperiment(res), "SpikeFlowNet") {
		t.Fatal("render missing content")
	}
	full := evedge.FullExperimentConfig()
	if full.DurUS <= 0 || full.Seed == 0 {
		t.Fatalf("bad full config %+v", full)
	}
}
